package oracle

import (
	"fmt"

	"antgrass/internal/blq"
	"antgrass/internal/constraint"
	"antgrass/internal/core"
	"antgrass/internal/hcd"
	"antgrass/internal/hvn"
	"antgrass/internal/ovs"
	"antgrass/internal/pts"
)

// Solution is the solver-side view the oracle compares against the
// reference: a solved points-to relation queryable per original variable.
// *core.Result (returned by every solver in the tree) satisfies it.
type Solution interface {
	PointsToSlice(v uint32) []uint32
}

// Config is one entry of the differential-testing matrix: a human-readable
// name (stable — it appears in divergence reports, shrunk test cases and
// CI logs) and a function that solves a program under that configuration.
type Config struct {
	Name  string
	Solve func(p *constraint.Program) (Solution, error)
}

// matrixBDDPool is the initial BDD node-pool size used by matrix
// configurations. The pool grows on demand, so this only needs to cover
// the small programs differential testing runs on; the production default
// (blq.DefaultPoolNodes) would allocate megabytes per configuration per
// checked program.
const matrixBDDPool = 1 << 12

// matrixWorkers are the parallel worker counts exercised by the matrix.
// The bulk-synchronous engine only engages for Naive/LCD with bitmap sets;
// the counts bracket the interesting schedules (minimal contention,
// moderate chunking, and more owner shards than a tiny frontier can
// fill — at 8 workers most rounds leave some deques empty, so the
// work-stealing path runs on nearly every round).
var matrixWorkers = []int{2, 4, 8}

// Matrix returns the full registered configuration set:
//
//   - all five core algorithms × {bitmap, BDD} points-to sets × {+hcd, −hcd};
//   - the five algorithms (±hcd) again with the plain bitmap factory —
//     pooling, copy-on-write sharing and dedup disabled — so the memory
//     engine is differentially tested against its own ablation;
//   - parallel worker counts for the configurations the wave engine
//     accepts (Naive and LCD over bitmaps), with and without HCD, plus
//     one parallel run over the plain factory;
//   - the same worker counts again on the asynchronous owner-sharded
//     engine (±async tiers: Naive/LCD × ±hcd × workers, one plain-factory
//     run, and the HVN+HU offline ladder at each worker count), pinning
//     the barrier-free engine bit-identical to every other configuration;
//   - difference propagation for the basic worklist solvers;
//   - the BLQ relational solver, with and without HCD;
//   - the offline pre-pass tiers (HVN, HU, HVN+HU, HVN+HU+OVS) over
//     Naive/LCD with and without HCD, plus HVN+HU crossed with the
//     parallel worker counts — every tier must be solution-preserving,
//     so these cells pin the value-numbering equivalences against the
//     unreduced configurations;
//   - the operation-memoization tier (+memo): Naive/LCD ±hcd sequential
//     and at 4 workers (BSP and async), HT ±hcd, difference propagation,
//     the plain-factory fallback and the HVN+HU ladder, all with
//     Options.Memo — memoization is a cache keyed on canonical set ids,
//     so these cells pin it bit-identical to plain solving.
//
// Every configuration must compute the identical least fixpoint; Check
// runs them in this order and reports the first that does not. To register
// a new solver configuration, append it here and it is automatically
// covered by Check, the corpus tests, and the fuzz targets (see
// docs/CORRECTNESS.md).
func Matrix() []Config {
	algs := []core.Algorithm{core.Naive, core.LCD, core.HT, core.PKH, core.PKW}
	var out []Config
	for _, alg := range algs {
		for _, repr := range []string{"bitmap", "bdd"} {
			for _, withHCD := range []bool{false, true} {
				out = append(out, coreConfig(alg, repr, withHCD, 0, false))
			}
		}
	}
	for _, alg := range algs {
		for _, withHCD := range []bool{false, true} {
			out = append(out, coreConfig(alg, "bitmap-plain", withHCD, 0, false))
		}
	}
	for _, alg := range []core.Algorithm{core.Naive, core.LCD} {
		for _, withHCD := range []bool{false, true} {
			for _, w := range matrixWorkers {
				out = append(out, coreConfig(alg, "bitmap", withHCD, w, false))
				out = append(out, coreConfigAsync(alg, "bitmap", withHCD, w, false, true))
			}
			out = append(out, coreConfig(alg, "bitmap", withHCD, 0, true))
		}
	}
	out = append(out, coreConfig(core.LCD, "bitmap-plain", true, 2, false))
	out = append(out, coreConfigAsync(core.LCD, "bitmap-plain", true, 2, false, true))
	out = append(out, blqConfig(false), blqConfig(true))
	for _, tier := range offlineTiers {
		for _, alg := range []core.Algorithm{core.Naive, core.LCD} {
			for _, withHCD := range []bool{false, true} {
				out = append(out, offlineConfig(tier, alg, withHCD, 0))
			}
		}
	}
	huTier := offlineTier{name: "hvn+hu", hvn: true, hu: true}
	for _, withHCD := range []bool{false, true} {
		for _, w := range matrixWorkers {
			out = append(out, offlineConfig(huTier, core.LCD, withHCD, w))
			out = append(out, offlineConfigAsync(huTier, core.LCD, withHCD, w, true))
		}
	}
	// Operation-memoization tier (+memo): the same cells again with the
	// union/diff/offset-deref memo engine switched on. Memoization is a
	// pure cache over canonical set ids, so every +memo cell must stay
	// bit-identical to its plain counterpart: Naive/LCD ±hcd sequential,
	// BSP at 4 workers and async at 4 owners; HT ±hcd (its topological
	// union path); difference propagation; the plain-factory fallback
	// (sets cannot be interned, so the tables must degrade gracefully);
	// and the HVN+HU offline ladder sequential and at 4 workers.
	for _, alg := range []core.Algorithm{core.Naive, core.LCD} {
		for _, withHCD := range []bool{false, true} {
			out = append(out, coreConfigMemo(alg, "bitmap", withHCD, 0, false, false))
			out = append(out, coreConfigMemo(alg, "bitmap", withHCD, 4, false, false))
			out = append(out, coreConfigMemo(alg, "bitmap", withHCD, 4, false, true))
		}
	}
	out = append(out, coreConfigMemo(core.LCD, "bitmap", true, 0, true, false))
	out = append(out, coreConfigMemo(core.HT, "bitmap", false, 0, false, false))
	out = append(out, coreConfigMemo(core.HT, "bitmap", true, 0, false, false))
	out = append(out, coreConfigMemo(core.LCD, "bitmap-plain", true, 0, false, false))
	out = append(out, coreConfigMemo(core.LCD, "bitmap-plain", true, 4, false, true))
	for _, withHCD := range []bool{false, true} {
		out = append(out, offlineConfigMemo(huTier, core.LCD, withHCD, 0))
		out = append(out, offlineConfigMemo(huTier, core.LCD, withHCD, 4))
	}
	return out
}

// offlineTier names one composition of the offline reduction passes.
// Each pass runs on the previous pass's reduced system, exactly as the
// facade's solve pipeline stacks them.
type offlineTier struct {
	name         string
	hvn, hu, ovs bool
}

// offlineTiers are the pre-pass compositions the matrix crosses with the
// online algorithms: each single pass, the HVN+HU ladder, and the full
// stack in front of OVS.
var offlineTiers = []offlineTier{
	{name: "hvn", hvn: true},
	{name: "hu", hu: true},
	{name: "hvn+hu", hvn: true, hu: true},
	{name: "hvn+hu+ovs", hvn: true, hu: true, ovs: true},
}

// offlineConfig builds a matrix entry that runs the tier's offline passes
// and feeds their accumulated pre-unions to the online solver through the
// HCD table, mirroring the facade pipeline. Queries stay on original
// variable ids because the solver applies the unions before constraints.
func offlineConfig(tier offlineTier, alg core.Algorithm, withHCD bool, workers int) Config {
	return offlineConfigFull(tier, alg, withHCD, workers, false, false)
}

// offlineConfigAsync is offlineConfig with the asynchronous engine
// switched on for the online solve that follows the reduction passes.
func offlineConfigAsync(tier offlineTier, alg core.Algorithm, withHCD bool, workers int, async bool) Config {
	return offlineConfigFull(tier, alg, withHCD, workers, async, false)
}

// offlineConfigMemo is offlineConfig with operation memoization switched
// on for the online solve that follows the reduction passes.
func offlineConfigMemo(tier offlineTier, alg core.Algorithm, withHCD bool, workers int) Config {
	return offlineConfigFull(tier, alg, withHCD, workers, false, true)
}

func offlineConfigFull(tier offlineTier, alg core.Algorithm, withHCD bool, workers int, async, memoize bool) Config {
	name := alg.String() + "+" + tier.name
	if withHCD {
		name += "+hcd"
	}
	if async {
		name += "+async"
	}
	if memoize {
		name += "+memo"
	}
	name += "/bitmap"
	if workers > 0 {
		name += fmt.Sprintf("/w%d", workers)
	}
	return Config{
		Name: name,
		Solve: func(p *constraint.Program) (Solution, error) {
			prog := p
			var pre [][2]uint32
			if tier.hvn {
				r := hvn.Reduce(prog, false)
				prog = r.Reduced
				pre = append(pre, r.PreUnions...)
			}
			if tier.hu {
				r := hvn.Reduce(prog, true)
				prog = r.Reduced
				pre = append(pre, r.PreUnions...)
			}
			if tier.ovs {
				r := ovs.Reduce(prog)
				prog = r.Reduced
				pre = append(pre, r.PreUnions...)
			}
			table := &hcd.Result{}
			if withHCD {
				table = hcd.Analyze(prog)
			}
			table.PreUnions = append(table.PreUnions, pre...)
			return core.Solve(prog, core.Options{
				Algorithm: alg,
				WithHCD:   true,
				HCDTable:  table,
				Workers:   workers,
				Async:     async,
				Memo:      memoize,
			})
		},
	}
}

func coreConfig(alg core.Algorithm, repr string, withHCD bool, workers int, diff bool) Config {
	return coreConfigFull(alg, repr, withHCD, workers, diff, false, false)
}

// coreConfigAsync is coreConfig with the asynchronous owner-sharded
// engine switched on: same algorithm, same solution, no rounds. The
// worker count becomes the owner-shard count.
func coreConfigAsync(alg core.Algorithm, repr string, withHCD bool, workers int, diff, async bool) Config {
	return coreConfigFull(alg, repr, withHCD, workers, diff, async, false)
}

// coreConfigMemo is coreConfigFull with operation memoization switched
// on: same solution, with repeated unions/diffs/offset-derefs answered
// from the memo caches (Options.Memo). Cells over the plain bitmap
// factory exercise the cannot-intern fallback path.
func coreConfigMemo(alg core.Algorithm, repr string, withHCD bool, workers int, diff, async bool) Config {
	return coreConfigFull(alg, repr, withHCD, workers, diff, async, true)
}

func coreConfigFull(alg core.Algorithm, repr string, withHCD bool, workers int, diff, async, memoize bool) Config {
	name := alg.String()
	if withHCD {
		name += "+hcd"
	}
	if diff {
		name += "+diff"
	}
	if async {
		name += "+async"
	}
	if memoize {
		name += "+memo"
	}
	name += "/" + repr
	if workers > 0 {
		name += fmt.Sprintf("/w%d", workers)
	}
	return Config{
		Name: name,
		Solve: func(p *constraint.Program) (Solution, error) {
			opts := core.Options{
				Algorithm: alg,
				WithHCD:   withHCD,
				Workers:   workers,
				DiffProp:  diff,
				Async:     async,
				Memo:      memoize,
			}
			switch repr {
			case "bdd":
				opts.Pts = pts.NewBDDFactory(uint32(p.NumVars), matrixBDDPool)
			case "bitmap-plain":
				opts.Pts = pts.NewPlainBitmapFactory()
			}
			return core.Solve(p, opts)
		},
	}
}

func blqConfig(withHCD bool) Config {
	name := "blq"
	if withHCD {
		name += "+hcd"
	}
	return Config{
		Name: name,
		Solve: func(p *constraint.Program) (Solution, error) {
			return blq.Solve(p, core.Options{
				WithHCD:      withHCD,
				BDDPoolNodes: matrixBDDPool,
			})
		},
	}
}
