package oracle

import (
	"os"
	"path/filepath"
	"testing"

	"antgrass/internal/constraint"
)

// corpusDir holds the committed regression corpus: every program that ever
// made a solver configuration diverge from the reference, minimized, plus
// hand-written structural edge cases. The same files seed the fuzz targets.
const corpusDir = "testdata/corpus"

func corpusFiles(t testing.TB) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.constraints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no corpus files under %s", corpusDir)
	}
	return files
}

func readCorpus(t testing.TB, path string) *constraint.Program {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := constraint.Read(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return p
}

// TestCorpus replays every committed corpus program through the full
// configuration matrix. Any divergence here is a regression of a
// previously-fixed bug (or a brand-new one); the corpus runs as a plain
// test so plain `go test ./...` and scripts/check.sh cover it without a
// fuzzing toolchain.
func TestCorpus(t *testing.T) {
	for _, path := range corpusFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			p := readCorpus(t, path)
			d, err := Check(p)
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				t.Errorf("divergence: %s", d)
			}
		})
	}
}

// TestCorpusMinimizedReproducerShape pins the acceptance properties of the
// minimized seed -4666488491679278325 reproducer: it must stay committed
// and stay small (the shrinker got it to 8 constraints over 4 variables).
func TestCorpusMinimizedReproducerShape(t *testing.T) {
	p := readCorpus(t, filepath.Join(corpusDir, "hcd_overcollapse_min.constraints"))
	if len(p.Constraints) > 10 {
		t.Errorf("minimized reproducer has %d constraints, want <= 10", len(p.Constraints))
	}
	if p.NumVars > 6 {
		t.Errorf("minimized reproducer has %d vars, want <= 6", p.NumVars)
	}
}
