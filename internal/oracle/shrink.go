package oracle

import "antgrass/internal/constraint"

// Shrink greedily minimizes p while interesting(p) stays true, and returns
// the smallest program found. The predicate must be true for p itself
// (otherwise p is returned unchanged) and must be pure — Shrink may call it
// many times on candidate programs.
//
// Two reductions alternate until neither makes progress:
//
//   - constraint deletion, ddmin-style: ever-smaller chunks of the
//     constraint list are removed as long as the predicate holds;
//   - variable removal: variables referenced by no remaining constraint
//     (taking function span blocks as atomic units) are dropped and the
//     universe renumbered.
//
// The typical predicate is "Check still reports a divergence":
//
//	d, _ := oracle.Check(p)
//	min := oracle.Shrink(p, func(q *constraint.Program) bool {
//		dq, err := oracle.Check(q)
//		return err == nil && dq != nil
//	})
//
// Greedy deletion preserves *a* divergence, not necessarily the original
// one; pin the predicate to a specific configuration (WithConfigs) or
// variable if the distinction matters.
func Shrink(p *constraint.Program, interesting func(*constraint.Program) bool) *constraint.Program {
	cur := p.Clone()
	if !interesting(cur) {
		return cur
	}
	for {
		changed := false
		if next, ok := shrinkConstraints(cur, interesting); ok {
			cur, changed = next, true
		}
		if next, ok := dropUnusedVars(cur, interesting); ok {
			cur, changed = next, true
		}
		if !changed {
			return cur
		}
	}
}

// shrinkConstraints removes constraints in ddmin-style passes: chunks of
// halving size are deleted whenever the predicate survives the deletion.
func shrinkConstraints(p *constraint.Program, interesting func(*constraint.Program) bool) (*constraint.Program, bool) {
	cur := p
	removedAny := false
	for chunk := len(cur.Constraints) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur.Constraints); {
			end := start + chunk
			if end > len(cur.Constraints) {
				end = len(cur.Constraints)
			}
			cand := cur.Clone()
			cand.Constraints = append(cand.Constraints[:start:start], cand.Constraints[end:]...)
			if interesting(cand) {
				cur = cand
				removedAny = true
				// Do not advance: the next chunk shifted into place.
			} else {
				start = end
			}
		}
	}
	return cur, removedAny
}

// dropUnusedVars removes every variable no remaining constraint references
// and renumbers the universe densely. Function span blocks are atomic: a
// block is removable only when none of its ids (the function variable, its
// return slot, its parameter slots) is referenced, since offset
// dereferences reach ids that appear in no constraint. The predicate is
// re-checked on the renumbered program before it is accepted.
func dropUnusedVars(p *constraint.Program, interesting func(*constraint.Program) bool) (*constraint.Program, bool) {
	n := p.NumVars
	used := make([]bool, n)
	for _, c := range p.Constraints {
		used[c.Dst] = true
		used[c.Src] = true
	}
	// Close over span blocks: a used id with a span marks its whole
	// block used, and an id inside a used block is itself used (so a
	// nested function block is kept too). Iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if !used[v] {
				continue
			}
			for off := uint32(1); off < p.SpanOf(uint32(v)); off++ {
				if !used[v+int(off)] {
					used[v+int(off)] = true
					changed = true
				}
			}
		}
	}
	remap := make([]uint32, n)
	kept := 0
	for v := 0; v < n; v++ {
		if used[v] {
			remap[v] = uint32(kept)
			kept++
		}
	}
	if kept == n || kept == 0 {
		return p, false
	}
	cand := &constraint.Program{NumVars: kept}
	if len(p.Names) > 0 {
		cand.Names = make([]string, kept)
	}
	if len(p.Span) > 0 {
		cand.Span = make([]uint32, kept)
		for i := range cand.Span {
			cand.Span[i] = 1
		}
	}
	for v := 0; v < n; v++ {
		if !used[v] {
			continue
		}
		if len(cand.Names) > 0 {
			cand.Names[remap[v]] = p.Names[v]
		}
		if len(cand.Span) > 0 {
			cand.Span[remap[v]] = p.Span[v]
		}
	}
	for _, c := range p.Constraints {
		c.Dst = remap[c.Dst]
		c.Src = remap[c.Src]
		cand.Constraints = append(cand.Constraints, c)
	}
	if cand.Validate() != nil || !interesting(cand) {
		return p, false
	}
	return cand, true
}
