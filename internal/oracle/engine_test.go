package oracle

import (
	"math/rand"
	"testing"

	"antgrass/internal/core"
	"antgrass/internal/synth"
)

// TestPooledCOWMatchesPlainOnSynthPrograms is the solve-level property
// test for the points-to memory engine: random generator-driven programs
// (synth.FromBytes decodes any byte string into a valid constraint
// system) must produce the identical fixpoint whether the bitmap factory
// runs with pooling/copy-on-write/dedup enabled or with the plain
// ablation — and both must match the map-backed Reference evaluator,
// which shares no set representation with either. The fuzz targets cover
// the same property with coverage guidance; this test pins a broad
// deterministic sample so plain `go test` exercises it without the
// fuzzing toolchain.
func TestPooledCOWMatchesPlainOnSynthPrograms(t *testing.T) {
	cfgs := []Config{
		coreConfig(core.LCD, "bitmap", true, 0, false),
		coreConfig(core.LCD, "bitmap-plain", true, 0, false),
		coreConfig(core.HT, "bitmap", false, 0, false),
		coreConfig(core.HT, "bitmap-plain", false, 0, false),
		coreConfig(core.PKH, "bitmap", true, 0, false),
		coreConfig(core.PKH, "bitmap-plain", true, 0, false),
		coreConfig(core.LCD, "bitmap", false, 2, false),
		coreConfig(core.LCD, "bitmap-plain", false, 2, false),
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 2+rng.Intn(4*fuzzMaxConstraints))
		rng.Read(data)
		p := synth.FromBytes(data)
		if p.NumVars > fuzzMaxVars || len(p.Constraints) > fuzzMaxConstraints {
			continue
		}
		d, err := Check(p, WithConfigs(cfgs...))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatalf("seed %d: pooled/plain divergence: %s", seed, d)
		}
	}
}
