package oracle

import (
	"math/rand"
	"testing"

	"antgrass/internal/constraint"
	"antgrass/internal/synth"
)

// divergesUnder is the standard shrinking predicate: the program still
// makes the given configurations (default: full matrix) disagree with the
// reference.
func divergesUnder(cfgs ...Config) func(*constraint.Program) bool {
	return func(q *constraint.Program) bool {
		var opts []Option
		if len(cfgs) > 0 {
			opts = append(opts, WithConfigs(cfgs...))
		}
		d, err := Check(q, opts...)
		return err == nil && d != nil
	}
}

// TestShrinkMinimizesBrokenConfigFailure drives the whole
// divergence-to-minimized-repro pipeline against the deliberately broken
// configuration: a random program that diverges must shrink to the bare
// skeleton that still exercises the dropped constraint.
func TestShrinkMinimizesBrokenConfigFailure(t *testing.T) {
	pred := divergesUnder(brokenConfig())
	rng := rand.New(rand.NewSource(3))
	shrunk := 0
	for i := 0; i < 50 && shrunk < 5; i++ {
		p := synth.RandomProgram(rng)
		if p.Validate() != nil || !pred(p) {
			continue
		}
		min := Shrink(p, pred)
		if !pred(min) {
			t.Fatalf("iteration %d: shrunk program no longer diverges", i)
		}
		if len(min.Constraints) > len(p.Constraints) || min.NumVars > p.NumVars {
			t.Fatalf("iteration %d: shrink grew the program", i)
		}
		// The broken config drops exactly one constraint, so a
		// 1-minimal divergence needs very few constraints (the dropped
		// one plus what makes its effect observable).
		if len(min.Constraints) > 4 {
			t.Errorf("iteration %d: shrunk to %d constraints, want <= 4: %v",
				i, len(min.Constraints), min.Constraints)
		}
		shrunk++
	}
	if shrunk == 0 {
		t.Fatal("no diverging random program found; weaken the generator seed")
	}
}

// TestShrinkUninterestingInput: the predicate failing on the input itself
// returns the input unchanged (as a copy).
func TestShrinkUninterestingInput(t *testing.T) {
	p := constraint.NewProgram()
	p.AddVar("a")
	p.AddVar("b")
	p.AddCopy(1, 0)
	min := Shrink(p, func(q *constraint.Program) bool { return false })
	if len(min.Constraints) != 1 || min.NumVars != 2 {
		t.Errorf("uninteresting input must be returned unchanged, got %v", min)
	}
}

// TestShrinkDropsUnusedFunctionBlocks: span blocks are removed atomically
// and survivors are renumbered densely.
func TestShrinkDropsUnusedFunctionBlocks(t *testing.T) {
	p := constraint.NewProgram()
	f := p.AddFunc("f", 2) // ids f..f+3, all unreferenced
	o := p.AddVar("o")
	x := p.AddVar("x")
	p.AddAddrOf(x, o)
	_ = f
	// Interesting = "x still points at something under the reference".
	min := Shrink(p, func(q *constraint.Program) bool {
		sets := Reference(q)
		for _, s := range sets {
			if len(s) > 0 {
				return true
			}
		}
		return false
	})
	if min.NumVars != 2 {
		t.Errorf("NumVars = %d, want 2 (function block dropped)", min.NumVars)
	}
	if len(min.Constraints) != 1 || min.Constraints[0].Kind != constraint.AddrOf {
		t.Errorf("Constraints = %v, want the single addr", min.Constraints)
	}
	if min.Validate() != nil {
		t.Errorf("shrunk program invalid: %v", min.Validate())
	}
}

// TestShrinkKeepsReferencedSpanInterior: a function block whose interior id
// (return or parameter slot) is referenced must keep the whole block, so
// offset dereferences stay meaningful.
func TestShrinkKeepsReferencedSpanInterior(t *testing.T) {
	p := constraint.NewProgram()
	f := p.AddFunc("f", 1) // f, f$ret, f$arg0
	o := p.AddVar("o")
	x := p.AddVar("x")
	p.AddAddrOf(x, f) // x = &f: offset derefs of x can reach f+1, f+2
	p.AddAddrOf(f+constraint.RetOffset, o)
	p.AddLoad(x, x, constraint.RetOffset)
	pred := func(q *constraint.Program) bool {
		for _, s := range Reference(q) {
			if len(s) > 0 {
				return true
			}
		}
		return false
	}
	min := Shrink(p, pred)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	if !pred(min) {
		t.Fatal("shrunk program lost the property")
	}
}
