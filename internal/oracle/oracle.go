// Package oracle is the repository's differential-testing subsystem.
//
// Every solver in this tree — the five explicit-closure algorithms of
// internal/core, the BDD-relational BLQ solver, both points-to
// representations, the parallel wave engine, and the HCD/LCD cycle
// optimizations — claims to compute exactly the same solution: the unique
// least fixpoint of the inclusion constraints (Table 1 of the paper). The
// cycle-detection techniques in particular are *exact* optimizations: the
// paper's central claim is that they change how fast the fixpoint is
// reached, never which fixpoint is reached.
//
// This package mechanically enforces that claim. It contains:
//
//   - Reference, a slow, obviously-correct fixpoint evaluator that shares
//     no code with the solvers under test (its own worklist, plain
//     map[uint32]bool sets, no cycle collapsing, no union-find);
//   - Check, which solves a program under every registered configuration
//     (see Matrix) and reports the first divergence from the reference,
//     with the offending variable and both points-to sets;
//   - Shrink, a greedy test-case minimizer that deletes constraints and
//     variables while a caller-supplied predicate (typically "Check still
//     diverges") holds, so failures arrive small enough to debug by hand;
//   - fuzz targets (FuzzSolversMatchReference and friends) plus a seed
//     corpus under testdata/corpus/ holding every previously-found
//     divergence as a permanent regression test.
//
// See docs/CORRECTNESS.md for the methodology: how the pieces fit
// together, how to add a new solver configuration to the matrix, and how
// to turn a fuzz failure into a committed regression test.
package oracle

import (
	"fmt"
	"sort"

	"antgrass/internal/constraint"
)

// Reference computes the least fixpoint of p's constraints with a
// deliberately naive evaluator: one plain map per variable and a worklist
// of constraint indices, re-evaluating a constraint whenever a variable it
// reads grows. It shares nothing with internal/core — no bitmaps, no
// union-find, no cycle detection — so a bug in the solvers' shared
// machinery cannot hide here. The returned slice is indexed by variable id.
//
// Load and store constraints subscribe dynamically to the pointees they
// discover: a ⊇ *(b+k) must be re-run not only when pts(b) grows but also
// when pts(v+k) grows for any v already in pts(b).
func Reference(p *constraint.Program) []map[uint32]bool {
	n := p.NumVars
	sets := make([]map[uint32]bool, n)
	for i := range sets {
		sets[i] = map[uint32]bool{}
	}

	// watchers[v] lists the constraint indices to re-evaluate when
	// pts(v) grows; watched de-duplicates dynamic subscriptions.
	watchers := make([][]int, n)
	watched := make([]map[uint32]bool, len(p.Constraints))
	subscribe := func(j int, v uint32) {
		if watched[j] == nil {
			watched[j] = map[uint32]bool{}
		}
		if !watched[j][v] {
			watched[j][v] = true
			watchers[v] = append(watchers[v], j)
		}
	}

	queue := make([]int, 0, len(p.Constraints))
	queued := make([]bool, len(p.Constraints))
	enqueue := func(j int) {
		if !queued[j] {
			queued[j] = true
			queue = append(queue, j)
		}
	}
	grow := func(v uint32) {
		for _, j := range watchers[v] {
			enqueue(j)
		}
	}
	// insert adds x to pts(dst), waking dst's watchers on growth.
	insert := func(dst, x uint32) {
		if !sets[dst][x] {
			sets[dst][x] = true
			grow(dst)
		}
	}
	// flow adds pts(src) to pts(dst). The key snapshot makes the
	// iteration safe when dst == src.
	flow := func(dst, src uint32) {
		for _, x := range snapshot(sets[src]) {
			insert(dst, x)
		}
	}
	// target resolves a dereference of pointee v at offset k, mirroring
	// Table 1: *(b+k) ranges over v+k for v ∈ pts(b) with k < span(v);
	// offset 0 is always valid.
	target := func(v, k uint32) (uint32, bool) {
		if k != 0 && k >= p.SpanOf(v) {
			return 0, false
		}
		return v + k, true
	}

	// Static subscriptions, then evaluate every constraint at least once.
	for j, c := range p.Constraints {
		switch c.Kind {
		case constraint.Copy:
			subscribe(j, c.Src)
		case constraint.Load:
			subscribe(j, c.Src)
		case constraint.Store:
			subscribe(j, c.Dst)
			subscribe(j, c.Src)
		}
		enqueue(j)
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		queued[j] = false
		c := p.Constraints[j]
		switch c.Kind {
		case constraint.AddrOf:
			insert(c.Dst, c.Src)
		case constraint.Copy:
			flow(c.Dst, c.Src)
		case constraint.Load: // c.Dst ⊇ *(c.Src+k)
			for _, v := range snapshot(sets[c.Src]) {
				if t, ok := target(v, c.Offset); ok {
					subscribe(j, t)
					flow(c.Dst, t)
				}
			}
		case constraint.Store: // *(c.Dst+k) ⊇ c.Src
			for _, v := range snapshot(sets[c.Dst]) {
				if t, ok := target(v, c.Offset); ok {
					subscribe(j, t)
					flow(t, c.Src)
				}
			}
		}
	}
	return sets
}

// snapshot returns the keys of m as a fresh slice, so callers can mutate m
// while ranging.
func snapshot(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Divergence describes the first disagreement Check found between a solver
// configuration and the reference fixpoint.
type Divergence struct {
	// Config names the diverging configuration (e.g. "pkh+hcd/bdd").
	Config string
	// Var is the first variable (lowest id) whose sets disagree.
	Var uint32
	// Got is the configuration's points-to set for Var, ascending.
	Got []uint32
	// Want is the reference's points-to set for Var, ascending.
	Want []uint32
}

// String renders the divergence in the style of the solver test failures.
func (d *Divergence) String() string {
	return fmt.Sprintf("%s: pts(v%d) = %v, want %v", d.Config, d.Var, d.Got, d.Want)
}

// options collects Check's functional options.
type options struct {
	configs []Config
}

// Option configures Check.
type Option func(*options)

// WithConfigs restricts Check to the given configurations instead of the
// full Matrix. Shrinking predicates use it to re-check only the
// configuration that originally diverged.
func WithConfigs(cfgs ...Config) Option {
	return func(o *options) { o.configs = cfgs }
}

// Check solves p under every registered configuration and compares each
// variable's points-to set against Reference(p). It returns the first
// divergence in deterministic (matrix, then variable) order, or nil when
// every configuration matches. The error return is reserved for
// infrastructure failures — an invalid program or a solver returning an
// error — not for mismatches.
func Check(p *constraint.Program, opts ...Option) (*Divergence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	cfgs := o.configs
	if cfgs == nil {
		cfgs = Matrix()
	}
	want := Reference(p)
	wantSorted := make([][]uint32, p.NumVars)
	for v := range want {
		wantSorted[v] = snapshot(want[v])
		sortU32(wantSorted[v])
	}
	for _, cfg := range cfgs {
		sol, err := cfg.Solve(p)
		if err != nil {
			return nil, fmt.Errorf("oracle: config %s: %w", cfg.Name, err)
		}
		for v := uint32(0); v < uint32(p.NumVars); v++ {
			got := sol.PointsToSlice(v)
			exp := wantSorted[v]
			if !equalU32(got, exp) {
				return &Divergence{
					Config: cfg.Name,
					Var:    v,
					Got:    append([]uint32(nil), got...),
					Want:   append([]uint32(nil), exp...),
				}, nil
			}
		}
	}
	return nil, nil
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
