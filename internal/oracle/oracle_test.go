package oracle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"antgrass/internal/constraint"
	"antgrass/internal/synth"
)

// exhaustiveSolve is a second, even dumber fixpoint evaluator: rescan the
// whole constraint list until a full pass changes nothing. It exists only
// to cross-check Reference — the two share no evaluation strategy, so a
// worklist-scheduling bug in Reference cannot hide.
func exhaustiveSolve(p *constraint.Program) []map[uint32]bool {
	n := p.NumVars
	sets := make([]map[uint32]bool, n)
	for i := range sets {
		sets[i] = map[uint32]bool{}
	}
	union := func(dst, src uint32) bool {
		ch := false
		for v := range sets[src] {
			if !sets[dst][v] {
				sets[dst][v] = true
				ch = true
			}
		}
		return ch
	}
	for changed := true; changed; {
		changed = false
		for _, c := range p.Constraints {
			switch c.Kind {
			case constraint.AddrOf:
				if !sets[c.Dst][c.Src] {
					sets[c.Dst][c.Src] = true
					changed = true
				}
			case constraint.Copy:
				if union(c.Dst, c.Src) {
					changed = true
				}
			case constraint.Load:
				for _, v := range snapshot(sets[c.Src]) {
					if c.Offset != 0 && c.Offset >= p.SpanOf(v) {
						continue
					}
					if union(c.Dst, v+c.Offset) {
						changed = true
					}
				}
			case constraint.Store:
				for _, v := range snapshot(sets[c.Dst]) {
					if c.Offset != 0 && c.Offset >= p.SpanOf(v) {
						continue
					}
					if union(v+c.Offset, c.Src) {
						changed = true
					}
				}
			}
		}
	}
	return sets
}

// TestReferenceMatchesExhaustive: the worklist reference and the rescan
// evaluator agree on random programs, so the oracle's own ground truth is
// itself double-checked.
func TestReferenceMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := synth.RandomProgram(rng)
		if p.Validate() != nil {
			continue
		}
		got := Reference(p)
		want := exhaustiveSolve(p)
		for v := 0; v < p.NumVars; v++ {
			if !reflect.DeepEqual(got[v], want[v]) {
				t.Fatalf("iteration %d: pts(v%d): worklist %v, exhaustive %v\nprogram: %v",
					i, v, got[v], want[v], p.Constraints)
			}
		}
	}
}

// TestMatrixShape pins the coverage guarantees of the default matrix:
// every core algorithm appears with both points-to representations, with
// and without HCD; the parallel worker counts are present; and BLQ is
// registered with and without HCD.
func TestMatrixShape(t *testing.T) {
	names := map[string]bool{}
	for _, cfg := range Matrix() {
		if names[cfg.Name] {
			t.Errorf("duplicate config name %q", cfg.Name)
		}
		names[cfg.Name] = true
	}
	for _, alg := range []string{"naive", "lcd", "ht", "pkh", "pkw"} {
		for _, repr := range []string{"bitmap", "bdd"} {
			for _, hcd := range []string{"", "+hcd"} {
				want := alg + hcd + "/" + repr
				if !names[want] {
					t.Errorf("matrix missing config %q", want)
				}
			}
		}
	}
	for _, alg := range []string{"naive", "lcd"} {
		for _, hcd := range []string{"", "+hcd"} {
			for _, w := range matrixWorkers {
				want := fmt.Sprintf("%s%s/bitmap/w%d", alg, hcd, w)
				if !names[want] {
					t.Errorf("matrix missing config %q", want)
				}
			}
			if !names[alg+hcd+"+diff/bitmap"] {
				t.Errorf("matrix missing config %q", alg+hcd+"+diff/bitmap")
			}
		}
	}
	if !names["blq"] || !names["blq+hcd"] {
		t.Error("matrix missing blq configurations")
	}
	for _, tier := range []string{"hvn", "hu", "hvn+hu", "hvn+hu+ovs"} {
		for _, alg := range []string{"naive", "lcd"} {
			for _, hcd := range []string{"", "+hcd"} {
				want := alg + "+" + tier + hcd + "/bitmap"
				if !names[want] {
					t.Errorf("matrix missing offline config %q", want)
				}
			}
		}
	}
	for _, hcd := range []string{"", "+hcd"} {
		for _, w := range matrixWorkers {
			want := fmt.Sprintf("lcd+hvn+hu%s/bitmap/w%d", hcd, w)
			if !names[want] {
				t.Errorf("matrix missing parallel offline config %q", want)
			}
		}
	}
}

// TestCheckQuickRandom is the oracle-side twin of the core package's
// cross-solver quick test: random programs, the full matrix, no
// divergences. (Smaller count than core's — the matrix is ~3x wider.)
func TestCheckQuickRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix random sweep is not short")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		p := synth.RandomProgram(rng)
		if p.Validate() != nil {
			continue
		}
		d, err := Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatalf("iteration %d: %s\nprogram: %v", i, d, p.Constraints)
		}
	}
}

// brokenConfig returns a deliberately wrong configuration: it solves the
// program with its final constraint deleted. Used to prove Check actually
// reports divergences and Shrink actually minimizes them.
func brokenConfig() Config {
	return Config{
		Name: "broken",
		Solve: func(p *constraint.Program) (Solution, error) {
			q := p.Clone()
			if len(q.Constraints) > 0 {
				q.Constraints = q.Constraints[:len(q.Constraints)-1]
			}
			return refSolution{sets: Reference(q)}, nil
		},
	}
}

// refSolution adapts Reference output to the Solution interface.
type refSolution struct{ sets []map[uint32]bool }

func (r refSolution) PointsToSlice(v uint32) []uint32 {
	s := snapshot(r.sets[v])
	sortU32(s)
	if len(s) == 0 {
		return nil
	}
	return s
}

func TestCheckReportsDivergence(t *testing.T) {
	p := constraint.NewProgram()
	o := p.AddVar("o")
	x := p.AddVar("x")
	y := p.AddVar("y")
	p.AddAddrOf(x, o)
	p.AddCopy(y, x) // the broken config drops this
	d, err := Check(p, WithConfigs(brokenConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("broken config must diverge")
	}
	if d.Config != "broken" || d.Var != y {
		t.Errorf("divergence = %+v, want config broken at var %d", d, y)
	}
	if len(d.Got) != 0 || !reflect.DeepEqual(d.Want, []uint32{o}) {
		t.Errorf("divergence sets = got %v want %v; expected got [] want [%d]", d.Got, d.Want, o)
	}
	if d.String() == "" {
		t.Error("String() must render")
	}
}

func TestCheckInvalidProgram(t *testing.T) {
	p := constraint.NewProgram()
	p.AddVar("a")
	p.AddCopy(0, 9)
	if _, err := Check(p); err == nil {
		t.Error("invalid program must error, not diverge")
	}
}
