package oracle

import (
	"bytes"
	"os"
	"testing"

	"antgrass/internal/constraint"
	"antgrass/internal/synth"
)

// Fuzzing cost bounds: the matrix runs ~34 solver configurations per
// input, so inputs are capped to keep per-execution time in the low
// milliseconds and let the fuzzer explore shapes instead of sizes.
const (
	fuzzMaxVars        = 48
	fuzzMaxConstraints = 96
)

func checkNoDivergence(t *testing.T, p *constraint.Program) {
	t.Helper()
	if p.NumVars > fuzzMaxVars || len(p.Constraints) > fuzzMaxConstraints {
		t.Skip("oversized input")
	}
	d, err := Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		var buf bytes.Buffer
		constraint.Write(&buf, p)
		t.Fatalf("divergence: %s\nprogram (add to testdata/corpus/ after shrinking):\n%s", d, buf.String())
	}
}

// FuzzSolversMatchReference feeds constraint files (the text format of
// internal/constraint) through the full configuration matrix. The
// committed corpus seeds it, so every historical failure is a starting
// point for mutation; invalid files are skipped, not failures.
func FuzzSolversMatchReference(f *testing.F) {
	for _, path := range corpusFiles(f) {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := constraint.Read(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		checkNoDivergence(t, p)
	})
}

// FuzzSolversMatchReferenceSynth is the same property driven through
// synth.FromBytes, which decodes *every* input into a valid program:
// mutation explores constraint-system shapes directly instead of fighting
// the text parser. Seeds are the serialized corpus programs re-encoded as
// generator input plus a few fixed patterns.
func FuzzSolversMatchReferenceSynth(f *testing.F) {
	f.Add([]byte{0, 4, 0, 1, 2, 0, 1, 2, 1, 0, 2, 3, 0, 0, 3, 1, 2, 0}) // addr/copy/load/store mix
	f.Add([]byte{2, 9, 2, 0, 3, 1, 3, 4, 0, 2})                         // functions + offset derefs
	f.Add([]byte{1, 1})                                                 // minimal universe
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2+4*fuzzMaxConstraints {
			t.Skip("oversized input")
		}
		p := synth.FromBytes(data)
		if err := p.Validate(); err != nil {
			t.Fatalf("synth.FromBytes produced an invalid program: %v", err)
		}
		checkNoDivergence(t, p)
	})
}

// FuzzShrinkIsSafe checks the shrinker's contract on arbitrary programs:
// whatever it returns is a valid program that still satisfies the
// predicate it was given (here: a structural predicate independent of the
// solvers, so this target stays fast).
func FuzzShrinkIsSafe(f *testing.F) {
	f.Add([]byte{0, 4, 0, 1, 2, 0, 2, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2+4*fuzzMaxConstraints {
			t.Skip("oversized input")
		}
		p := synth.FromBytes(data)
		pred := func(q *constraint.Program) bool {
			_, _, loads, stores := q.Counts()
			return loads+stores > 0
		}
		if !pred(p) {
			t.Skip()
		}
		min := Shrink(p, pred)
		if err := min.Validate(); err != nil {
			t.Fatalf("shrunk program invalid: %v", err)
		}
		if !pred(min) {
			t.Fatal("shrunk program lost the predicate")
		}
		if len(min.Constraints) > len(p.Constraints) || min.NumVars > p.NumVars {
			t.Fatal("shrink grew the program")
		}
	})
}
