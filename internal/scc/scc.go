// Package scc computes strongly connected components of directed graphs.
//
// Two algorithms are provided: Tarjan's classic single-pass algorithm [26]
// and Nuutila and Soisalon-Soininen's variant [19], which avoids pushing
// nodes of trivial components onto the component stack. The paper's solvers
// use the Nuutila variant (§5.1); both are implemented here and
// property-tested against each other and against a brute-force reachability
// oracle.
//
// Both entry points visit only nodes reachable from the given roots, which
// is what Lazy Cycle Detection needs (a search rooted at the target of a
// propagation edge), and both report the number of nodes visited, which is
// the "nodes searched" statistic of §5.3.
package scc

// Succs returns the successors of node x. The returned slice is owned by the
// callee's caller: the algorithms retain it only while x's frame is live and
// never modify it.
type Succs func(x uint32) []uint32

// Result holds the outcome of an SCC computation.
type Result struct {
	// Comps lists every visited component in reverse topological order:
	// if the condensed graph has an edge C1 -> C2, then C2 appears before
	// C1. Trivial (single-node) components are included.
	Comps [][]uint32
	// Visited is the number of distinct nodes visited by the search.
	Visited int
}

// TopoOrder returns the visited component representatives (first member of
// each component) in topological order (predecessors first).
func (r *Result) TopoOrder() []uint32 {
	out := make([]uint32, len(r.Comps))
	for i, c := range r.Comps {
		out[len(out)-1-i] = c[0]
	}
	return out
}

const unvisited = 0

type tarjanState struct {
	succs   Succs
	index   []uint32 // 1-based discovery index; 0 = unvisited
	lowlink []uint32
	onstack []bool
	stack   []uint32
	frames  []frame
	nextIdx uint32
	res     *Result
}

type frame struct {
	v    uint32
	out  []uint32
	next int
}

// Tarjan computes the SCCs reachable from roots in a graph with nodes
// 0..n-1. If roots is nil, all nodes are used as roots.
func Tarjan(n int, roots []uint32, succs Succs) *Result {
	s := &tarjanState{
		succs:   succs,
		index:   make([]uint32, n),
		lowlink: make([]uint32, n),
		onstack: make([]bool, n),
		res:     &Result{},
	}
	if roots == nil {
		for v := 0; v < n; v++ {
			if s.index[v] == unvisited {
				s.visit(uint32(v))
			}
		}
	} else {
		for _, v := range roots {
			if s.index[v] == unvisited {
				s.visit(v)
			}
		}
	}
	return s.res
}

func (s *tarjanState) push(v uint32) {
	s.nextIdx++
	s.index[v] = s.nextIdx
	s.lowlink[v] = s.nextIdx
	s.onstack[v] = true
	s.stack = append(s.stack, v)
	s.frames = append(s.frames, frame{v: v, out: s.succs(v)})
	s.res.Visited++
}

func (s *tarjanState) visit(root uint32) {
	s.push(root)
	for len(s.frames) > 0 {
		f := &s.frames[len(s.frames)-1]
		if f.next < len(f.out) {
			w := f.out[f.next]
			f.next++
			if s.index[w] == unvisited {
				s.push(w)
			} else if s.onstack[w] && s.index[w] < s.lowlink[f.v] {
				s.lowlink[f.v] = s.index[w]
			}
			continue
		}
		// All successors of f.v processed.
		v := f.v
		if s.lowlink[v] == s.index[v] {
			var comp []uint32
			for {
				w := s.stack[len(s.stack)-1]
				s.stack = s.stack[:len(s.stack)-1]
				s.onstack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			s.res.Comps = append(s.res.Comps, comp)
		}
		s.frames = s.frames[:len(s.frames)-1]
		if len(s.frames) > 0 {
			p := &s.frames[len(s.frames)-1]
			if s.lowlink[v] < s.lowlink[p.v] {
				s.lowlink[p.v] = s.lowlink[v]
			}
		}
	}
}

type nuutilaState struct {
	succs       Succs
	index       []uint32 // 1-based discovery index; 0 = unvisited
	root        []uint32 // candidate root (by node id), valid once visited
	inComponent []bool
	stack       []uint32 // only potential non-root members are stacked
	frames      []frame
	nextIdx     uint32
	res         *Result
}

// Nuutila computes the SCCs reachable from roots using Nuutila and
// Soisalon-Soininen's variant of Tarjan's algorithm, which keeps only
// candidate component members on the explicit stack. If roots is nil, all
// nodes are used as roots.
func Nuutila(n int, roots []uint32, succs Succs) *Result {
	s := &nuutilaState{
		succs:       succs,
		index:       make([]uint32, n),
		root:        make([]uint32, n),
		inComponent: make([]bool, n),
		res:         &Result{},
	}
	if roots == nil {
		for v := 0; v < n; v++ {
			if s.index[v] == unvisited {
				s.visit(uint32(v))
			}
		}
	} else {
		for _, v := range roots {
			if s.index[v] == unvisited {
				s.visit(v)
			}
		}
	}
	return s.res
}

func (s *nuutilaState) push(v uint32) {
	s.nextIdx++
	s.index[v] = s.nextIdx
	s.root[v] = v
	s.frames = append(s.frames, frame{v: v, out: s.succs(v)})
	s.res.Visited++
}

func (s *nuutilaState) visit(start uint32) {
	s.push(start)
	for len(s.frames) > 0 {
		f := &s.frames[len(s.frames)-1]
		if f.next < len(f.out) {
			w := f.out[f.next]
			f.next++
			if s.index[w] == unvisited {
				s.push(w)
			} else if !s.inComponent[w] {
				if s.index[s.root[w]] < s.index[s.root[f.v]] {
					s.root[f.v] = s.root[w]
				}
			}
			continue
		}
		v := f.v
		s.frames = s.frames[:len(s.frames)-1]
		if s.root[v] == v {
			s.inComponent[v] = true
			comp := []uint32{v}
			for len(s.stack) > 0 && s.index[s.stack[len(s.stack)-1]] > s.index[v] {
				w := s.stack[len(s.stack)-1]
				s.stack = s.stack[:len(s.stack)-1]
				s.inComponent[w] = true
				comp = append(comp, w)
			}
			s.res.Comps = append(s.res.Comps, comp)
		} else {
			s.stack = append(s.stack, v)
		}
		if len(s.frames) > 0 {
			p := &s.frames[len(s.frames)-1]
			if !s.inComponent[v] && s.index[s.root[v]] < s.index[s.root[p.v]] {
				s.root[p.v] = s.root[v]
			}
		}
	}
}
