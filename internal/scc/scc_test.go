package scc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// adjacency builds a Succs function from an edge list.
func adjacency(n int, edges [][2]uint32) Succs {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return func(x uint32) []uint32 { return adj[x] }
}

// canonical turns a component list into a sorted partition for comparison.
func canonical(comps [][]uint32) [][]uint32 {
	out := make([][]uint32, 0, len(comps))
	for _, c := range comps {
		cc := append([]uint32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// bruteSCC computes the SCC partition by mutual reachability (Floyd-Warshall).
func bruteSCC(n int, edges [][2]uint32) [][]uint32 {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		reach[i][i] = true
	}
	for _, e := range edges {
		reach[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	assigned := make([]bool, n)
	var comps [][]uint32
	for i := 0; i < n; i++ {
		if assigned[i] {
			continue
		}
		comp := []uint32{uint32(i)}
		assigned[i] = true
		for j := i + 1; j < n; j++ {
			if !assigned[j] && reach[i][j] && reach[j][i] {
				comp = append(comp, uint32(j))
				assigned[j] = true
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func TestSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0, 2 -> 3
	edges := [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	for name, f := range map[string]func(int, []uint32, Succs) *Result{"tarjan": Tarjan, "nuutila": Nuutila} {
		r := f(4, nil, adjacency(4, edges))
		got := canonical(r.Comps)
		want := [][]uint32{{0, 1, 2}, {3}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: comps = %v, want %v", name, got, want)
		}
		if r.Visited != 4 {
			t.Errorf("%s: visited = %d, want 4", name, r.Visited)
		}
		// Reverse topological order: {3} (successor) must come first.
		if len(r.Comps[0]) != 1 || r.Comps[0][0] != 3 {
			t.Errorf("%s: first emitted comp = %v, want [3]", name, r.Comps[0])
		}
	}
}

func TestSelfLoop(t *testing.T) {
	edges := [][2]uint32{{0, 0}, {0, 1}}
	r := Nuutila(2, nil, adjacency(2, edges))
	got := canonical(r.Comps)
	want := [][]uint32{{0}, {1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("comps = %v, want %v", got, want)
	}
}

func TestRootsRestriction(t *testing.T) {
	// Two disconnected cycles; search only from node 0's cycle.
	edges := [][2]uint32{{0, 1}, {1, 0}, {2, 3}, {3, 2}}
	r := Tarjan(4, []uint32{0}, adjacency(4, edges))
	if r.Visited != 2 {
		t.Errorf("visited = %d, want 2", r.Visited)
	}
	got := canonical(r.Comps)
	want := [][]uint32{{0, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("comps = %v, want %v", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Nuutila(0, nil, func(uint32) []uint32 { return nil })
	if len(r.Comps) != 0 || r.Visited != 0 {
		t.Errorf("empty graph: %+v", r)
	}
}

func TestLongChainIterative(t *testing.T) {
	// A deep chain would blow the stack if the implementation recursed.
	const n = 200000
	edges := make([][2]uint32, 0, n)
	for i := uint32(0); i < n-1; i++ {
		edges = append(edges, [2]uint32{i, i + 1})
	}
	r := Tarjan(n, []uint32{0}, adjacency(n, edges))
	if len(r.Comps) != n {
		t.Errorf("comps = %d, want %d", len(r.Comps), n)
	}
	r2 := Nuutila(n, []uint32{0}, adjacency(n, edges))
	if len(r2.Comps) != n {
		t.Errorf("nuutila comps = %d, want %d", len(r2.Comps), n)
	}
}

func randomGraph(rng *rand.Rand, n, m int) [][2]uint32 {
	edges := make([][2]uint32, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return edges
}

func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		m := rng.Intn(3 * n)
		edges := randomGraph(rng, n, m)
		want := canonical(bruteSCC(n, edges))
		gotT := canonical(Tarjan(n, nil, adjacency(n, edges)).Comps)
		gotN := canonical(Nuutila(n, nil, adjacency(n, edges)).Comps)
		return reflect.DeepEqual(gotT, want) && reflect.DeepEqual(gotN, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTarjanNuutilaAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		m := rng.Intn(4 * n)
		edges := randomGraph(rng, n, m)
		rt := Tarjan(n, nil, adjacency(n, edges))
		rn := Nuutila(n, nil, adjacency(n, edges))
		if rt.Visited != rn.Visited {
			return false
		}
		return reflect.DeepEqual(canonical(rt.Comps), canonical(rn.Comps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestReverseTopologicalOrder verifies the documented emission order: for
// every edge u -> v crossing components, v's component is emitted first.
func TestReverseTopologicalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		edges := randomGraph(rng, n, rng.Intn(3*n))
		for name, alg := range map[string]func(int, []uint32, Succs) *Result{"t": Tarjan, "n": Nuutila} {
			_ = name
			r := alg(n, nil, adjacency(n, edges))
			pos := make([]int, n)
			for i, c := range r.Comps {
				for _, v := range c {
					pos[v] = i
				}
			}
			for _, e := range edges {
				if pos[e[0]] < pos[e[1]] {
					return false // successor emitted after predecessor
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTopoOrderHelper(t *testing.T) {
	edges := [][2]uint32{{0, 1}, {1, 2}}
	r := Tarjan(3, nil, adjacency(3, edges))
	order := r.TopoOrder()
	pos := map[uint32]int{}
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("TopoOrder = %v, want 0 before 1 before 2", order)
	}
}

func BenchmarkNuutilaDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	edges := randomGraph(rng, n, 4*n)
	adj := adjacency(n, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nuutila(n, nil, adj)
	}
}
