package blq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"antgrass/internal/constraint"
	"antgrass/internal/core"
)

// checkAgainstLCD compares BLQ's solution (with and without HCD) to the
// LCD solver's, which is itself property-tested against a brute-force
// oracle in package core.
func checkAgainstLCD(t *testing.T, p *constraint.Program) {
	t.Helper()
	want, err := core.Solve(p, core.Options{Algorithm: core.LCD})
	if err != nil {
		t.Fatal(err)
	}
	for _, withHCD := range []bool{false, true} {
		r, err := Solve(p, core.Options{WithHCD: withHCD, BDDPoolNodes: 1 << 12})
		if err != nil {
			t.Fatalf("hcd=%v: %v", withHCD, err)
		}
		for v := uint32(0); v < uint32(p.NumVars); v++ {
			got := r.PointsToSlice(v)
			exp := want.PointsToSlice(v)
			if len(got) == 0 && len(exp) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, exp) {
				t.Fatalf("hcd=%v: pts(%s) = %v, want %v", withHCD, p.NameOf(v), got, exp)
			}
		}
	}
}

func TestPaperFigure4(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	c := p.AddVar("c")
	d := p.AddVar("d")
	p.AddAddrOf(a, c)
	p.AddCopy(d, c)
	p.AddLoad(b, a, 0)
	p.AddStore(a, b, 0)
	checkAgainstLCD(t, p)
	_, _, _, _ = a, b, c, d
}

func TestLoadStoreChain(t *testing.T) {
	p := constraint.NewProgram()
	x, y := p.AddVar("x"), p.AddVar("y")
	pp, q, rr := p.AddVar("p"), p.AddVar("q"), p.AddVar("r")
	p.AddAddrOf(pp, x)
	p.AddAddrOf(q, y)
	p.AddStore(pp, q, 0)
	p.AddLoad(rr, pp, 0)
	checkAgainstLCD(t, p)

	r, err := Solve(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsToSlice(rr); !reflect.DeepEqual(got, []uint32{y}) {
		t.Errorf("pts(r) = %v, want {y}", got)
	}
}

func TestIndirectCallOffsets(t *testing.T) {
	p := constraint.NewProgram()
	g := p.AddVar("g")
	f := p.AddFunc("f", 1)
	fp := p.AddVar("fp")
	x := p.AddVar("x")
	r := p.AddVar("r")
	p.AddCopy(f+constraint.RetOffset, f+constraint.ParamOffset)
	p.AddAddrOf(fp, f)
	p.AddAddrOf(x, g)
	p.AddStore(fp, x, constraint.ParamOffset)
	p.AddLoad(r, fp, constraint.RetOffset)
	checkAgainstLCD(t, p)
}

func TestCopyCycle(t *testing.T) {
	p := constraint.NewProgram()
	o := p.AddVar("o")
	x, y, z := p.AddVar("x"), p.AddVar("y"), p.AddVar("z")
	p.AddAddrOf(x, o)
	p.AddCopy(y, x)
	p.AddCopy(z, y)
	p.AddCopy(x, z)
	checkAgainstLCD(t, p)
}

func TestHCDCollapsesInBDD(t *testing.T) {
	// The Figure 3 program: HCD must fire and collapse pts(a) with b.
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	c := p.AddVar("c")
	p.AddAddrOf(a, c)
	p.AddLoad(b, a, 0)
	p.AddStore(a, b, 0)
	r, err := Solve(p, core.Options{WithHCD: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.HCDCollapses == 0 {
		t.Error("HCD rule should have fired")
	}
	if r.Rep(b) != r.Rep(c) {
		t.Error("b and c should share a representative")
	}
}

func TestEmptyProgram(t *testing.T) {
	p := constraint.NewProgram()
	if _, err := Solve(p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	p2 := constraint.NewProgram()
	p2.AddVar("lonely")
	r, err := Solve(p2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsToSlice(0); len(got) != 0 {
		t.Errorf("pts of constraint-free var = %v", got)
	}
}

func randomProgram(rng *rand.Rand) *constraint.Program {
	p := constraint.NewProgram()
	var funcs []uint32
	for i := 0; i < rng.Intn(3); i++ {
		funcs = append(funcs, p.AddFunc(fmt.Sprintf("f%d", i), rng.Intn(3)))
	}
	for i := 0; i < 3+rng.Intn(12); i++ {
		p.AddVar(fmt.Sprintf("v%d", i))
	}
	n := uint32(p.NumVars)
	for i := 0; i < 1+rng.Intn(35); i++ {
		d, s := uint32(rng.Intn(int(n))), uint32(rng.Intn(int(n)))
		switch rng.Intn(8) {
		case 0, 1:
			p.AddAddrOf(d, s)
		case 2, 3, 4:
			p.AddCopy(d, s)
		case 5:
			p.AddLoad(d, s, 0)
		case 6:
			p.AddStore(d, s, 0)
		case 7:
			if len(funcs) > 0 {
				off := uint32(1 + rng.Intn(3))
				if rng.Intn(2) == 0 {
					p.AddLoad(d, s, off)
				} else {
					p.AddStore(d, s, off)
				}
			}
		}
	}
	return p
}

func TestQuickMatchesLCD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		if p.Validate() != nil {
			return true
		}
		want, err := core.Solve(p, core.Options{Algorithm: core.LCD})
		if err != nil {
			return false
		}
		for _, withHCD := range []bool{false, true} {
			r, err := Solve(p, core.Options{WithHCD: withHCD, BDDPoolNodes: 1 << 12})
			if err != nil {
				return false
			}
			for v := uint32(0); v < uint32(p.NumVars); v++ {
				got := r.PointsToSlice(v)
				exp := want.PointsToSlice(v)
				if len(got) == 0 && len(exp) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, exp) {
					t.Logf("seed %d hcd=%v: pts(v%d) = %v, want %v", seed, withHCD, v, got, exp)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStatsAndAlias(t *testing.T) {
	p := constraint.NewProgram()
	o := p.AddVar("o")
	x, y := p.AddVar("x"), p.AddVar("y")
	p.AddAddrOf(x, o)
	p.AddCopy(y, x)
	r, err := Solve(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Alias(x, y) {
		t.Error("x and y alias")
	}
	if r.Stats.MemBytes <= 0 || r.Stats.Propagations == 0 {
		t.Errorf("stats not populated: %+v", r.Stats)
	}
}

// TestRowSetInterface exercises the pts.Set view over the relation BDD
// that BLQ results expose.
func TestRowSetInterface(t *testing.T) {
	p := constraint.NewProgram()
	o1, o2 := p.AddVar("o1"), p.AddVar("o2")
	x, y := p.AddVar("x"), p.AddVar("y")
	p.AddAddrOf(x, o1)
	p.AddAddrOf(x, o2)
	p.AddAddrOf(y, o2)
	r, err := Solve(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sx := r.PointsTo(x)
	sy := r.PointsTo(y)
	if sx.Len() != 2 || sy.Len() != 1 || sx.Empty() {
		t.Fatalf("set sizes: x=%d y=%d", sx.Len(), sy.Len())
	}
	if !sx.Contains(o1) || sx.Contains(x) {
		t.Error("Contains wrong")
	}
	if sx.Equal(sy) {
		t.Error("different sets Equal")
	}
	if !sx.Intersects(sy) {
		t.Error("sets sharing o2 must intersect")
	}
	d := sx.SubtractCopy(sy)
	if got := d.Slice(); len(got) != 1 || got[0] != o1 {
		t.Errorf("SubtractCopy = %v, want {o1}", got)
	}
	if c := sx.SubtractCopy(nil); !c.Equal(sx) {
		t.Error("SubtractCopy(nil) should copy")
	}
	// Mutators (used if a client unions rows).
	cp := sy.SubtractCopy(nil)
	if !cp.UnionWith(sx) || cp.Len() != 2 {
		t.Error("UnionWith failed")
	}
	if cp.UnionWith(sx) {
		t.Error("idempotent UnionWith reported change")
	}
	if !cp.Insert(y) || cp.Insert(y) {
		t.Error("Insert change-reporting wrong")
	}
	n := 0
	cp.ForEach(func(uint32) bool { n++; return true })
	if n != 3 {
		t.Errorf("ForEach visited %d", n)
	}
	if sx.MemBytes() <= 0 {
		t.Error("MemBytes must be positive")
	}
}
