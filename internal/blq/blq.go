// Package blq implements the BDD-based inclusion solver of Berndl, Lhoták,
// Qian, Hendren and Umanee [4], in the field-insensitive C variant the
// paper evaluates (handling indirect function calls, unlike the original
// Java formulation, §2).
//
// The whole points-to relation lives in one BDD P ⊆ d1×d2 (pointer,
// pointee) and the copy-edge relation in another, E ⊆ d1×d3 (source,
// destination), over three interleaved finite domains. Propagation is a
// relational product with the incrementalization of Berndl et al.: only
// tuples discovered in the previous step are joined against E. Load and
// store constraints become relational rules producing new edges; indirect
// call constraints (non-zero offsets) are resolved by enumerating the
// small function points-to sets, since a BDD domain cannot be shifted by a
// constant cheaply (documented substitution, see DESIGN.md).
//
// With Hybrid Cycle Detection enabled, the offline table drives collapsing:
// nodes are merged in a union-find and their rows/columns renamed inside
// the relation BDDs — the "overhead involved in collapsing those cycles"
// that §5.2 notes keeps HCD's benefit for BLQ modest.
package blq

import (
	"context"
	"fmt"
	"time"

	"antgrass/internal/bdd"
	"antgrass/internal/constraint"
	"antgrass/internal/core"
	"antgrass/internal/hcd"
	"antgrass/internal/metrics"
	"antgrass/internal/pts"
	"antgrass/internal/uf"
)

// DefaultPoolNodes is the default initial BDD pool capacity, playing the
// role of the paper's fixed BuDDy allocation.
const DefaultPoolNodes = 1 << 20

type state struct {
	p     *constraint.Program
	m     *bdd.Manager
	d1    *bdd.Domain // pointer / edge source
	d2    *bdd.Domain // pointee (location)
	d3    *bdd.Domain // edge destination / rule temp
	nodes *uf.UF
	span  []uint32

	P bdd.Node // points-to relation (d1, d2)
	E bdd.Node // copy edges (d1, d3)
	L bdd.Node // zero-offset loads (d1 deref'd, d3 dst)
	S bdd.Node // zero-offset stores (d1 deref'd, d3 src)

	offLoads  []constraint.Constraint
	offStores []constraint.Constraint

	shiftProp  map[int]int // d3 -> d1 (propagation result)
	shiftLoad  map[int]int // d2 -> d1 (load rule result)
	shiftStore map[int]int // d3 -> d1 and d2 -> d3 (store rule result)

	hcdPairs []hcd.Pair
	// renames records every collapse chronologically (lost, winner):
	// rule-produced edges mention pointee values, i.e. raw location
	// ids, which may name collapsed-away nodes; they are canonicalized
	// by replaying this history (the union-find cannot be applied
	// inside a relational product).
	renames [][2]uint32
	stats   core.Stats
}

// Solve runs BLQ (optionally with HCD) on p. The Pts and Worklist fields of
// opts are ignored: BLQ's representation is inherently BDD-based and
// set-at-a-time.
func Solve(p *constraint.Program, opts core.Options) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pool := opts.BDDPoolNodes
	if pool == 0 {
		pool = DefaultPoolNodes
	}
	n := p.NumVars
	if n == 0 {
		return core.NewResult(p, uf.New(0), nil, core.Stats{}), nil
	}
	// Manager creation allocates the whole BDD node pool up front (the
	// paper's fixed BuDDy sizing), a measurable slice of small solves:
	// attribute it to graph.build alongside seeding the relations.
	setupSpan := opts.Metrics.StartPhase(metrics.PhaseBuild)
	m, doms := bdd.NewManagerWithDomains(uint32(n), 3, pool)
	s := &state{
		p:     p,
		m:     m,
		d1:    doms[0],
		d2:    doms[1],
		d3:    doms[2],
		nodes: uf.New(n),
		span:  make([]uint32, n),
		P:     bdd.False,
		E:     bdd.False,
		L:     bdd.False,
		S:     bdd.False,
	}
	for i := range s.span {
		s.span[i] = p.SpanOf(uint32(i))
	}
	s.shiftProp = s.d3.ShiftTo(s.d1)
	s.shiftLoad = s.d2.ShiftTo(s.d1)
	s.shiftStore = s.d3.ShiftTo(s.d1)
	for k, v := range s.d2.ShiftTo(s.d3) {
		s.shiftStore[k] = v
	}
	setupSpan.End() // ends before the HCD block, which bills its own phase

	if opts.WithHCD {
		table := opts.HCDTable
		if table == nil {
			table = hcd.Analyze(p)
			// Offline pass ran inside this call: it is part of this
			// solve's wall clock (a precomputed table's is not).
			opts.Metrics.AddPhase(metrics.PhaseHCD, table.Duration)
		}
		s.stats.OfflineDuration = table.Duration
		preSpan := opts.Metrics.StartPhase(metrics.PhaseBuild)
		for _, pu := range table.PreUnions {
			rep, lost := s.nodes.Union(pu[0], pu[1])
			if rep != lost {
				s.renames = append(s.renames, [2]uint32{lost, rep})
				s.stats.NodesCollapsed++
			}
		}
		s.hcdPairs = table.Pairs
		preSpan.End()
	}

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	reg := opts.Metrics
	start := time.Now()
	buildSpan := reg.StartPhase(metrics.PhaseBuild)
	s.build()
	buildSpan.End()
	solveSpan := reg.StartPhase(metrics.PhaseSolve)
	if err := s.run(ctx, reg); err != nil {
		return nil, err
	}
	solveSpan.End()
	finalizeSpan := reg.StartPhase(metrics.PhaseFinalize)
	sets := s.extract()
	s.stats.SolveDuration = time.Since(start)
	s.stats.MemBytes = int64(m.MemBytes() + s.nodes.MemBytes())
	res := core.NewResult(p, s.nodes, sets, s.stats)
	finalizeSpan.End()
	reg.SampleMem()
	s.stats.Export(reg)
	return res, nil
}

// build seeds the relation BDDs from the constraint list (through the
// union-find, so HCD pre-unions are already folded in).
func (s *state) build() {
	find := s.nodes.Find
	for _, c := range s.p.Constraints {
		switch c.Kind {
		case constraint.AddrOf:
			s.P = s.m.Or(s.P, bdd.Pair(s.d1, find(c.Dst), s.d2, c.Src))
		case constraint.Copy:
			src, dst := find(c.Src), find(c.Dst)
			if src != dst {
				s.E = s.m.Or(s.E, bdd.Pair(s.d1, src, s.d3, dst))
				s.stats.EdgesAdded++
			}
		case constraint.Load:
			if c.Offset == 0 {
				s.L = s.m.Or(s.L, bdd.Pair(s.d1, find(c.Src), s.d3, find(c.Dst)))
			} else {
				s.offLoads = append(s.offLoads, c)
			}
		case constraint.Store:
			if c.Offset == 0 {
				s.S = s.m.Or(s.S, bdd.Pair(s.d1, find(c.Dst), s.d3, find(c.Src)))
			} else {
				s.offStores = append(s.offStores, c)
			}
		}
	}
}

// run iterates propagation and rule application to a fixpoint,
// cooperatively checking ctx between iterations. reg (nil ok) receives a
// peak-memory sample per fixpoint round — the BDD node pool dominates
// BLQ's footprint and grows between rounds.
func (s *state) run(ctx context.Context, reg *metrics.Registry) error {
	m := s.m
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("blq: solve canceled: %w", err)
		}
		s.stats.Rounds++
		reg.SampleMem()
		s.propagate()
		changed := false
		// Load rule: a ⊇ *b. ∃d1. L(b,a) ∧ P(b,v) gives (d3=a, d2=v);
		// the new edges are v → a, i.e. (d1=v, d3=a).
		t := m.RelProd(s.L, s.P, s.d1.Cube())
		newE := m.Replace(t, s.shiftLoad)
		// Store rule: *a ⊇ b. ∃d1. S(a,b) ∧ P(a,v) gives (d3=b, d2=v);
		// the new edges are b → v, i.e. (d1=b, d3=v).
		t2 := m.RelProd(s.S, s.P, s.d1.Cube())
		newE2 := m.Replace(t2, s.shiftStore)
		add := m.Diff(s.canonEdges(m.Or(newE, newE2)), s.E)
		// Self-edges are semantically inert; leave them (they cannot
		// change P since P is closed under identity propagation).
		if add != bdd.False {
			s.E = m.Or(s.E, add)
			changed = true
		}
		if s.applyOffsets() {
			changed = true
		}
		if s.applyHCD() {
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// propagate closes P over the copy edges E, using the incrementalization of
// Berndl et al.: each step joins only the previously new tuples against E.
func (s *state) propagate() {
	m := s.m
	pnew := s.P
	for pnew != bdd.False {
		s.stats.Propagations++
		t := m.RelProd(s.E, pnew, s.d1.Cube()) // (d3 dst, d2 obj)
		t = m.Replace(t, s.shiftProp)          // (d1 dst, d2 obj)
		delta := m.Diff(t, s.P)
		s.P = m.Or(s.P, delta)
		pnew = delta
	}
}

// ptsOf returns the current points-to set of the representative v as a
// value slice (enumerated from P).
func (s *state) ptsOf(v uint32) []uint32 {
	row := s.m.And(s.P, s.d1.Eq(v))
	return s.d2.Values(s.m.Exist(row, s.d1.Cube()))
}

// applyOffsets resolves the indirect-call (non-zero offset) constraints by
// enumerating the base pointer's points-to set.
func (s *state) applyOffsets() bool {
	m := s.m
	find := s.nodes.Find
	changed := false
	for _, c := range s.offLoads {
		for _, v := range s.ptsOf(find(c.Src)) {
			if c.Offset >= s.span[v] {
				continue
			}
			src, dst := find(v+c.Offset), find(c.Dst)
			if src == dst {
				continue
			}
			pair := bdd.Pair(s.d1, src, s.d3, dst)
			if m.Diff(pair, s.E) != bdd.False {
				s.E = m.Or(s.E, pair)
				s.stats.EdgesAdded++
				changed = true
			}
		}
	}
	for _, c := range s.offStores {
		for _, v := range s.ptsOf(find(c.Dst)) {
			if c.Offset >= s.span[v] {
				continue
			}
			src, dst := find(c.Src), find(v+c.Offset)
			if src == dst {
				continue
			}
			pair := bdd.Pair(s.d1, src, s.d3, dst)
			if m.Diff(pair, s.E) != bdd.False {
				s.E = m.Or(s.E, pair)
				s.stats.EdgesAdded++
				changed = true
			}
		}
	}
	return changed
}

// applyHCD fires the offline tuples: for (a, b), every member of pts(a) is
// collapsed with b, renaming rows and columns of the relation BDDs. Pairs
// arrives sorted by Deref, so the collapse sequence is deterministic.
func (s *state) applyHCD() bool {
	if s.hcdPairs == nil {
		return false
	}
	find := s.nodes.Find
	changed := false
	for _, pr := range s.hcdPairs {
		a, b := pr.Deref, pr.Target
		ra := find(a)
		for _, v := range s.ptsOf(ra) {
			rv, rb := find(v), find(b)
			if rv == rb {
				continue
			}
			s.collapse(rv, rb)
			s.stats.HCDCollapses++
			changed = true
		}
	}
	return changed
}

// canonEdges rewrites an edge relation so both endpoints name current
// representatives, replaying the collapse history in order (a pointee
// value inside a rule result may be any historic node id).
func (s *state) canonEdges(E bdd.Node) bdd.Node {
	for _, rn := range s.renames {
		E = s.rename(E, s.d1, rn[0], rn[1])
		E = s.rename(E, s.d3, rn[0], rn[1])
	}
	return E
}

// collapse merges graph nodes x and y: the loser's rows/columns in every
// relation are renamed to the winner. Points-to elements (d2 of P) denote
// memory locations and are never renamed.
func (s *state) collapse(x, y uint32) {
	rep, lost := s.nodes.Union(x, y)
	if rep == lost {
		return
	}
	s.renames = append(s.renames, [2]uint32{lost, rep})
	s.stats.NodesCollapsed++
	s.P = s.rename(s.P, s.d1, lost, rep)
	s.E = s.rename(s.rename(s.E, s.d1, lost, rep), s.d3, lost, rep)
	s.L = s.rename(s.rename(s.L, s.d1, lost, rep), s.d3, lost, rep)
	s.S = s.rename(s.rename(s.S, s.d1, lost, rep), s.d3, lost, rep)
}

// rename moves the tuples of R whose dom-coordinate equals from over to to.
func (s *state) rename(R bdd.Node, dom *bdd.Domain, from, to uint32) bdd.Node {
	m := s.m
	row := m.And(R, dom.Eq(from))
	if row == bdd.False {
		return R
	}
	moved := m.And(m.Exist(row, dom.Cube()), dom.Eq(to))
	return m.Or(m.Diff(R, row), moved)
}

// extract materializes per-representative points-to sets as lightweight
// views over the relation BDD.
func (s *state) extract() []pts.Set {
	sets := make([]pts.Set, s.p.NumVars)
	m := s.m
	for v := uint32(0); v < uint32(s.p.NumVars); v++ {
		if s.nodes.Find(v) != v {
			continue
		}
		row := m.Exist(m.And(s.P, s.d1.Eq(v)), s.d1.Cube())
		if row != bdd.False {
			sets[v] = &rowSet{s: s, node: row}
		}
	}
	return sets
}

// rowSet adapts one variable's slice of the relation BDD to pts.Set.
type rowSet struct {
	s    *state
	node bdd.Node
}

func (r *rowSet) Insert(x uint32) bool {
	n := r.s.m.Or(r.node, r.s.d2.Eq(x))
	if n == r.node {
		return false
	}
	r.node = n
	return true
}

func (r *rowSet) Contains(x uint32) bool {
	return r.s.m.And(r.node, r.s.d2.Eq(x)) != bdd.False
}

func (r *rowSet) UnionWith(o pts.Set) bool {
	n := r.s.m.Or(r.node, o.(*rowSet).node)
	if n == r.node {
		return false
	}
	r.node = n
	return true
}

func (r *rowSet) SubtractCopy(o pts.Set) pts.Set {
	n := r.node
	if o != nil {
		n = r.s.m.Diff(n, o.(*rowSet).node)
	}
	return &rowSet{s: r.s, node: n}
}

func (r *rowSet) Equal(o pts.Set) bool { return r.node == o.(*rowSet).node }

func (r *rowSet) Intersects(o pts.Set) bool {
	return r.s.m.And(r.node, o.(*rowSet).node) != bdd.False
}

func (r *rowSet) ForEach(fn func(uint32) bool) { r.s.d2.ForEach(r.node, fn) }
func (r *rowSet) Len() int                     { return r.s.d2.Count(r.node) }
func (r *rowSet) Empty() bool                  { return r.node == bdd.False }
func (r *rowSet) Slice() []uint32              { return r.s.d2.Values(r.node) }
func (r *rowSet) MemBytes() int                { return 16 }

func (r *rowSet) AppendTo(dst []uint32) []uint32 {
	r.s.d2.ForEach(r.node, func(x uint32) bool {
		dst = append(dst, x)
		return true
	})
	return dst
}
