package blq

import (
	"math/rand"
	"reflect"
	"testing"

	"antgrass/internal/core"
)

// Regression: rule-produced edges mention pointee values (raw location
// ids); after an HCD pre-union collapsed a pointee's node, those edges
// landed on the stale row and tuples were lost. Seed found by
// TestQuickMatchesLCD.

func TestRegressionCollapsedPointeeEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(-1962633301964134492))
	p := randomProgram(rng)
	if p.Validate() != nil {
		t.Skip()
	}
	want, _ := core.Solve(p, core.Options{Algorithm: core.LCD})
	r, err := Solve(p, core.Options{WithHCD: true, BDDPoolNodes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < uint32(p.NumVars); v++ {
		g, w := r.PointsToSlice(v), want.PointsToSlice(v)
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("pts(v%d) = %v, want %v", v, g, w)
		}
	}
}
