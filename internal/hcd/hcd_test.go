package hcd

import (
	"testing"

	"antgrass/internal/constraint"
)

// TestPaperFigure3 reproduces the running example of §4.2:
//
//	a = &c; d = c; b = *a; *a = b
//
// The offline constraint graph puts *a and b in a cycle, so the analysis
// must emit the tuple (a, b) and no pre-unions.
func TestPaperFigure3(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	c := p.AddVar("c")
	d := p.AddVar("d")
	p.AddAddrOf(a, c)   // a = &c
	p.AddCopy(d, c)     // d = c
	p.AddLoad(b, a, 0)  // b = *a
	p.AddStore(a, b, 0) // *a = b

	r := Analyze(p)
	if len(r.PreUnions) != 0 {
		t.Errorf("PreUnions = %v, want none", r.PreUnions)
	}
	if len(r.Pairs) != 1 {
		t.Fatalf("Pairs = %v, want exactly one", r.Pairs)
	}
	if got, ok := r.Pairs[a]; !ok || got != b {
		t.Errorf("Pairs[a] = %d,%v, want %d", got, ok, b)
	}
	if r.SCCs != 1 {
		t.Errorf("SCCs = %d, want 1", r.SCCs)
	}
	_ = d
}

func TestStructuralCycle(t *testing.T) {
	p := constraint.NewProgram()
	x := p.AddVar("x")
	y := p.AddVar("y")
	z := p.AddVar("z")
	p.AddCopy(x, y)
	p.AddCopy(y, x)
	p.AddCopy(z, x) // dangling, not in the cycle

	r := Analyze(p)
	if len(r.Pairs) != 0 {
		t.Errorf("Pairs = %v, want none", r.Pairs)
	}
	if len(r.PreUnions) != 1 {
		t.Fatalf("PreUnions = %v, want one pair", r.PreUnions)
	}
	pu := r.PreUnions[0]
	if !((pu[0] == x && pu[1] == y) || (pu[0] == y && pu[1] == x)) {
		t.Errorf("PreUnions = %v, want {x,y}", r.PreUnions)
	}
}

func TestNoCycles(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	p.AddCopy(b, a)
	p.AddLoad(a, b, 0)
	r := Analyze(p)
	if len(r.Pairs) != 0 || len(r.PreUnions) != 0 || r.SCCs != 0 {
		t.Errorf("acyclic graph produced %+v", r)
	}
}

// TestOffsetConstraintsIgnored: offset dereferences contribute no offline
// edges, so a would-be cycle through an offset load is not reported.
func TestOffsetConstraintsIgnored(t *testing.T) {
	p := constraint.NewProgram()
	f := p.AddFunc("f", 1)
	x := p.AddVar("x")
	p.AddLoad(x, f, 1)  // x ⊇ *(f+1): ignored offline
	p.AddStore(f, x, 0) // *f ⊇ x: ref(f) participates
	r := Analyze(p)
	if len(r.Pairs) != 0 {
		t.Errorf("offset load must not create offline cycles: %v", r.Pairs)
	}
}

// TestMixedSCCSharedTarget: several ref nodes in one SCC map to the same
// chosen non-ref node.
func TestMixedSCCSharedTarget(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	x := p.AddVar("x")
	// x ⊇ *a, *b ⊇ x, and tie ref(a), x, ref(b) into one cycle:
	// ref(a) → x → ref(b), and *?: close the loop with b ⊇ ... we use
	// loads/stores to chain: *a ⊇ x gives x → ref(a).
	p.AddLoad(x, a, 0)  // ref(a) → x
	p.AddStore(b, x, 0) // x → ref(b)
	p.AddLoad(x, b, 0)  // ref(b) → x  (closes ref(b) ↔ x)
	p.AddStore(a, x, 0) // x → ref(a)  (closes ref(a) ↔ x)
	r := Analyze(p)
	if len(r.Pairs) != 2 {
		t.Fatalf("Pairs = %v, want entries for a and b", r.Pairs)
	}
	if r.Pairs[a] != x || r.Pairs[b] != x {
		t.Errorf("Pairs = %v, want both mapping to x", r.Pairs)
	}
}

func TestDurationRecorded(t *testing.T) {
	p := constraint.NewProgram()
	p.AddVar("a")
	r := Analyze(p)
	if r.Duration < 0 {
		t.Error("Duration must be non-negative")
	}
}
