package hcd

import (
	"testing"

	"antgrass/internal/constraint"
)

// TestPaperFigure3 reproduces the running example of §4.2:
//
//	a = &c; d = c; b = *a; *a = b
//
// The offline constraint graph puts *a and b in a cycle, so the analysis
// must emit the tuple (a, b) and no pre-unions.
func TestPaperFigure3(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	c := p.AddVar("c")
	d := p.AddVar("d")
	p.AddAddrOf(a, c)   // a = &c
	p.AddCopy(d, c)     // d = c
	p.AddLoad(b, a, 0)  // b = *a
	p.AddStore(a, b, 0) // *a = b

	r := Analyze(p)
	if len(r.PreUnions) != 0 {
		t.Errorf("PreUnions = %v, want none", r.PreUnions)
	}
	if len(r.Pairs) != 1 {
		t.Fatalf("Pairs = %v, want exactly one", r.Pairs)
	}
	if r.Pairs[0] != (Pair{Deref: a, Target: b}) {
		t.Errorf("Pairs = %v, want (%d, %d)", r.Pairs, a, b)
	}
	if r.SCCs != 1 {
		t.Errorf("SCCs = %d, want 1", r.SCCs)
	}
	_ = d
}

func TestStructuralCycle(t *testing.T) {
	p := constraint.NewProgram()
	x := p.AddVar("x")
	y := p.AddVar("y")
	z := p.AddVar("z")
	p.AddCopy(x, y)
	p.AddCopy(y, x)
	p.AddCopy(z, x) // dangling, not in the cycle

	r := Analyze(p)
	if len(r.Pairs) != 0 {
		t.Errorf("Pairs = %v, want none", r.Pairs)
	}
	if len(r.PreUnions) != 1 {
		t.Fatalf("PreUnions = %v, want one pair", r.PreUnions)
	}
	pu := r.PreUnions[0]
	if !((pu[0] == x && pu[1] == y) || (pu[0] == y && pu[1] == x)) {
		t.Errorf("PreUnions = %v, want {x,y}", r.PreUnions)
	}
}

func TestNoCycles(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	p.AddCopy(b, a)
	p.AddLoad(a, b, 0)
	r := Analyze(p)
	if len(r.Pairs) != 0 || len(r.PreUnions) != 0 || r.SCCs != 0 {
		t.Errorf("acyclic graph produced %+v", r)
	}
}

// TestOffsetConstraintsIgnored: offset dereferences contribute no offline
// edges, so a would-be cycle through an offset load is not reported.
func TestOffsetConstraintsIgnored(t *testing.T) {
	p := constraint.NewProgram()
	f := p.AddFunc("f", 1)
	x := p.AddVar("x")
	p.AddLoad(x, f, 1)  // x ⊇ *(f+1): ignored offline
	p.AddStore(f, x, 0) // *f ⊇ x: ref(f) participates
	r := Analyze(p)
	if len(r.Pairs) != 0 {
		t.Errorf("offset load must not create offline cycles: %v", r.Pairs)
	}
}

// TestMixedSCCSharedTarget: several ref nodes in one SCC map to the same
// chosen non-ref node.
func TestMixedSCCSharedTarget(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	x := p.AddVar("x")
	// x ⊇ *a, *b ⊇ x, and tie ref(a), x, ref(b) into one cycle:
	// ref(a) → x → ref(b), and *?: close the loop with b ⊇ ... we use
	// loads/stores to chain: *a ⊇ x gives x → ref(a).
	p.AddLoad(x, a, 0)  // ref(a) → x
	p.AddStore(b, x, 0) // x → ref(b)
	p.AddLoad(x, b, 0)  // ref(b) → x  (closes ref(b) ↔ x)
	p.AddStore(a, x, 0) // x → ref(a)  (closes ref(a) ↔ x)
	r := Analyze(p)
	if len(r.Pairs) != 2 {
		t.Fatalf("Pairs = %v, want entries for a and b", r.Pairs)
	}
	want := []Pair{{Deref: a, Target: x}, {Deref: b, Target: x}}
	if r.Pairs[0] != want[0] || r.Pairs[1] != want[1] {
		t.Errorf("Pairs = %v, want %v (sorted by Deref, both targeting x)", r.Pairs, want)
	}
}

// TestMixedSCCRefMediatedCycleDropped: when the only cycle connecting two
// ref nodes threads through both of them with no var-var return path, no
// pair is licensed — the online cycle exists only if the other ref's
// points-to set turns out non-empty, which the offline pass cannot assume.
// This is the shape behind the seed -4666488491679278325 over-collapse.
func TestMixedSCCRefMediatedCycleDropped(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	c := p.AddVar("c")
	v0 := p.AddVar("v0")
	v1 := p.AddVar("v1")
	x := p.AddVar("x")
	y := p.AddVar("y")
	// Offline cycle ref(a) → v0 → ref(c) → v1 → ref(a) with no var-var
	// chord: neither ref has a cycle avoiding the other.
	p.AddLoad(v0, a, 0)  // ref(a) → v0
	p.AddStore(c, v0, 0) // v0 → ref(c)
	p.AddLoad(v1, c, 0)  // ref(c) → v1
	p.AddStore(a, v1, 0) // v1 → ref(a)
	p.AddAddrOf(a, x)    // pts(a) = {x}; pts(c) stays empty
	p.AddAddrOf(x, y)
	r := Analyze(p)
	if r.SCCs != 1 {
		t.Fatalf("SCCs = %d, want the one mixed SCC", r.SCCs)
	}
	if len(r.Pairs) != 0 {
		t.Errorf("Pairs = %v, want none: every cycle is mediated by the other ref", r.Pairs)
	}
	if len(r.PreUnions) != 0 {
		t.Errorf("PreUnions = %v, want none", r.PreUnions)
	}
}

// TestMixedSCCPartialLicense: in one mixed SCC, a ref with a var-only
// return path gets a pair while a ref without one does not — and the
// licensed target must lie on the ref's own var-cycle, never on a
// ref-mediated branch of the SCC.
func TestMixedSCCPartialLicense(t *testing.T) {
	p := constraint.NewProgram()
	a := p.AddVar("a")
	b := p.AddVar("b")
	v1 := p.AddVar("v1")
	v2 := p.AddVar("v2")
	v3 := p.AddVar("v3")
	// ref(a) has a var-only cycle: ref(a) → v1 → v2 → ref(a).
	p.AddLoad(v1, a, 0)  // ref(a) → v1
	p.AddCopy(v2, v1)    // v1 → v2
	p.AddStore(a, v2, 0) // v2 → ref(a)
	// ref(b) joins the same SCC, but its only return path runs through
	// ref(a): v1 → ref(b) → v3 → ref(a) → v1.
	p.AddStore(b, v1, 0) // v1 → ref(b)
	p.AddLoad(v3, b, 0)  // ref(b) → v3
	p.AddStore(a, v3, 0) // v3 → ref(a)
	r := Analyze(p)
	if r.SCCs != 1 {
		t.Fatalf("SCCs = %d, want one mixed SCC containing both refs", r.SCCs)
	}
	if len(r.Pairs) != 1 {
		t.Fatalf("Pairs = %v, want exactly the pair for a", r.Pairs)
	}
	if r.Pairs[0].Deref != a {
		t.Errorf("Pairs = %v, want Deref a=%d (ref(b) has no var-only cycle)", r.Pairs, a)
	}
	if r.Pairs[0].Target != v1 {
		t.Errorf("Target = %d, want the smallest licensed member %d", r.Pairs[0].Target, v1)
	}
}

// TestHCDRegressionSeed4666488491679278325 pins the offline pairs computed
// for the minimized reproducer of the over-collapse found by the oracle on
// seed -4666488491679278325 (committed under
// internal/oracle/testdata/corpus/hcd_overcollapse_min.constraints).
//
// The offline SCC is {v0, v1, v3, ref(1), ref(2)}. ref(2) has the var-only
// return path v3 → ref(2) → v0 → v3, so the pair (2, 0) is licensed. ref(1)
// has no var-only cycle — its every return path threads through ref(2) — so
// the buggy table's pair targeting a member of pts-carrying v1's orbit must
// NOT be emitted: with pts(2) empty at the crucial moment, the online cycle
// it assumed never materializes, and collapsing through it leaked {1,3,5}
// into pts(v0) on the original 17-constraint program.
func TestHCDRegressionSeed4666488491679278325(t *testing.T) {
	p := constraint.NewProgram()
	for i := 1; i <= 4; i++ {
		p.AddVar("v" + string(rune('0'+i)))
	}
	p.AddCopy(2, 3)
	p.AddLoad(1, 1, 0)
	p.AddCopy(3, 0)
	p.AddAddrOf(0, 0)
	p.AddStore(2, 3, 0)
	p.AddLoad(0, 2, 0)
	p.AddCopy(3, 1)
	p.AddStore(1, 0, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Analyze(p)
	if len(r.Pairs) != 1 || r.Pairs[0] != (Pair{Deref: 2, Target: 0}) {
		t.Errorf("Pairs = %v, want exactly (2, 0): ref(1) has no var-only cycle", r.Pairs)
	}
	for _, pr := range r.Pairs {
		if pr.Deref == 1 {
			t.Errorf("pair %v for ref(1) must not be licensed", pr)
		}
	}
}

// TestPairsSortedDeterministic: Pairs comes back sorted by Deref so every
// consumer applies collapses in one reproducible order.
func TestPairsSortedDeterministic(t *testing.T) {
	p := constraint.NewProgram()
	// Two disjoint Figure-3-style mixed SCCs, declared in reverse id
	// order so an insertion-ordered implementation would emit them
	// backwards.
	a2 := p.AddVar("a2")
	b2 := p.AddVar("b2")
	a1 := p.AddVar("a1")
	b1 := p.AddVar("b1")
	p.AddLoad(b2, a2, 0)
	p.AddStore(a2, b2, 0)
	p.AddLoad(b1, a1, 0)
	p.AddStore(a1, b1, 0)
	for i := 0; i < 5; i++ {
		r := Analyze(p)
		if len(r.Pairs) != 2 {
			t.Fatalf("Pairs = %v, want two", r.Pairs)
		}
		if r.Pairs[0].Deref != a2 || r.Pairs[1].Deref != a1 {
			t.Fatalf("Pairs = %v, want sorted by Deref (%d before %d)", r.Pairs, a2, a1)
		}
	}
}

func TestDurationRecorded(t *testing.T) {
	p := constraint.NewProgram()
	p.AddVar("a")
	r := Analyze(p)
	if r.Duration < 0 {
		t.Error("Duration must be non-negative")
	}
}
