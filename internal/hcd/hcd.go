// Package hcd implements the offline half of Hybrid Cycle Detection
// (§4.2 of the paper), a linear-time static analysis run before the pointer
// analysis proper.
//
// The offline constraint graph has one node per program variable plus one
// "ref" node per variable (standing for the variable's unknown points-to
// set). Edges are derived from the simple and complex constraints:
//
//	a ⊇ b    yields  b      → a
//	a ⊇ *b   yields  ref(b) → a
//	*a ⊇ b   yields  b      → ref(a)
//
// Base (address-of) constraints are ignored. SCCs are then found with
// Tarjan's algorithm:
//
//   - an SCC with only non-ref nodes is a genuine structural cycle and may
//     be collapsed before solving starts (PreUnions);
//   - an SCC containing a ref node ref(a) means that everything in pts(a)
//     will join a cycle with the SCC's non-ref nodes once pts(a) is known,
//     so for one chosen non-ref member b we record the tuple (a, b) for
//     the online analysis to act on (Pairs).
//
// Constraints with a non-zero offset (indirect-call encodings) contribute no
// offline edges: their targets depend on per-pointee arithmetic the offline
// graph cannot express. This only makes HCD detect fewer cycles, which is
// safe (HCD is incomplete by design).
package hcd

import (
	"time"

	"antgrass/internal/constraint"
	"antgrass/internal/scc"
)

// Result is the output of the offline analysis, consumed by the solvers.
type Result struct {
	// Pairs maps a dereferenced variable a to a collapse target b:
	// when the online analysis processes node a it may union every
	// member of pts(a) with b (Figure 5 of the paper).
	Pairs map[uint32]uint32
	// PreUnions lists pairs of variables that are in a purely structural
	// cycle and can be collapsed before solving begins.
	PreUnions [][2]uint32
	// Duration is the offline analysis time (reported separately in
	// Table 3, "HCD-Offline").
	Duration time.Duration
	// SCCs is the number of non-trivial SCCs found in the offline graph.
	SCCs int
}

// Analyze runs the offline analysis on p.
func Analyze(p *constraint.Program) *Result {
	start := time.Now()
	n := uint32(p.NumVars)
	// Offline graph nodes: v in [0,n) is variable v; n+v is ref(v).
	adj := make([][]uint32, 2*n)
	addEdge := func(from, to uint32) {
		adj[from] = append(adj[from], to)
	}
	for _, c := range p.Constraints {
		switch c.Kind {
		case constraint.Copy:
			addEdge(c.Src, c.Dst)
		case constraint.Load:
			if c.Offset == 0 {
				addEdge(n+c.Src, c.Dst)
			}
		case constraint.Store:
			if c.Offset == 0 {
				addEdge(c.Src, n+c.Dst)
			}
		}
	}
	res := &Result{Pairs: make(map[uint32]uint32)}
	sccRes := scc.Tarjan(int(2*n), nil, func(x uint32) []uint32 { return adj[x] })
	for _, comp := range sccRes.Comps {
		if len(comp) < 2 {
			continue
		}
		res.SCCs++
		// Partition into variable and ref members.
		var vars, refs []uint32
		for _, m := range comp {
			if m < n {
				vars = append(vars, m)
			} else {
				refs = append(refs, m-n)
			}
		}
		if len(refs) == 0 {
			// Structural cycle: collapse offline.
			for i := 1; i < len(vars); i++ {
				res.PreUnions = append(res.PreUnions, [2]uint32{vars[0], vars[i]})
			}
			continue
		}
		if len(vars) == 0 {
			// Cannot happen: there are no constraints of the form
			// *p ⊇ *q, so ref nodes never connect directly. Guard
			// anyway.
			continue
		}
		b := vars[0]
		for _, a := range refs {
			res.Pairs[a] = b
		}
		// The non-ref members of a mixed SCC are NOT collapsed
		// offline: their mutual cycle only materializes online if the
		// ref's points-to set turns out non-empty, and collapsing
		// early could lose precision (§4.2).
	}
	res.Duration = time.Since(start)
	return res
}
