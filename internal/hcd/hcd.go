// Package hcd implements the offline half of Hybrid Cycle Detection
// (§4.2 of the paper), a linear-time static analysis run before the pointer
// analysis proper.
//
// The offline constraint graph has one node per program variable plus one
// "ref" node per variable (standing for the variable's unknown points-to
// set). Edges are derived from the simple and complex constraints:
//
//	a ⊇ b    yields  b      → a
//	a ⊇ *b   yields  ref(b) → a
//	*a ⊇ b   yields  b      → ref(a)
//
// Base (address-of) constraints are ignored. SCCs are then found with
// Tarjan's algorithm:
//
//   - an SCC with only non-ref nodes is a genuine structural cycle and may
//     be collapsed before solving starts (PreUnions);
//   - an SCC containing a ref node ref(a) may justify a tuple (a, b): the
//     online analysis then unions every member of pts(a) with the non-ref
//     node b as soon as it is discovered (Pairs).
//
// # The offline-pair precondition
//
// Recording (a, b) asserts unconditionally that every v ∈ pts(a) ends up in
// a cycle with b in the online constraint graph. That is only guaranteed
// when ref(a) and b lie on an offline cycle whose every OTHER node is a
// non-ref node: var→var edges exist online from the start, the SCC's store
// edges into ref(a) become online edges x → v for each v ∈ pts(a), and its
// load edges out of ref(a) become online edges v → y, so the cycle
// b →* x → v → y →* b materializes the moment v enters pts(a).
//
// If the only cycles connecting ref(a) and b thread through a second ref
// node ref(c), the online cycle exists only if pts(c) turns out non-empty —
// an assumption the offline analysis cannot make. Acting on such a pair
// over-collapses: it can merge a variable the least fixpoint keeps separate
// and leak points-to members into it (see docs/ALGORITHMS.md §HCD for the
// worked example, minimized from random-program seed -4666488491679278325).
// Analyze therefore emits (a, b) only when b is on a cycle with ref(a) in
// the subgraph induced by the SCC's non-ref members plus ref(a) alone; ref
// nodes whose every cycle is mediated by another ref node contribute no
// pair. Dropping a pair is always safe — HCD is incomplete by design, and
// the online cycle, if it ever materializes, is found by the solver's own
// cycle detection (LCD, PKH, PKW) or plain propagation.
//
// Constraints with a non-zero offset (indirect-call encodings) contribute no
// offline edges: their targets depend on per-pointee arithmetic the offline
// graph cannot express. This only makes HCD detect fewer cycles, which is
// safe for the same reason.
package hcd

import (
	"sort"
	"time"

	"antgrass/internal/constraint"
	"antgrass/internal/scc"
)

// Pair is one offline tuple (a, b): when the online analysis discovers a
// member v of pts(Deref), it may union v with Target (Figure 5 of the
// paper).
type Pair struct {
	// Deref is the variable a whose ref node anchors the cycle.
	Deref uint32
	// Target is the chosen non-ref cycle member b.
	Target uint32
}

// Result is the output of the offline analysis, consumed by the solvers.
type Result struct {
	// Pairs lists the offline tuples in ascending Deref order (each
	// Deref appears at most once — a ref node lives in exactly one SCC).
	// The deterministic order makes every consumer's collapse sequence,
	// and therefore any failure, reproducible bit-identically.
	Pairs []Pair
	// PreUnions lists pairs of variables that are in a purely structural
	// cycle and can be collapsed before solving begins.
	PreUnions [][2]uint32
	// Duration is the offline analysis time (reported separately in
	// Table 3, "HCD-Offline").
	Duration time.Duration
	// SCCs is the number of non-trivial SCCs found in the offline graph.
	SCCs int
}

// Analyze runs the offline analysis on p.
func Analyze(p *constraint.Program) *Result {
	start := time.Now()
	n := uint32(p.NumVars)
	// Offline graph nodes: v in [0,n) is variable v; n+v is ref(v).
	adj := make([][]uint32, 2*n)
	addEdge := func(from, to uint32) {
		adj[from] = append(adj[from], to)
	}
	for _, c := range p.Constraints {
		switch c.Kind {
		case constraint.Copy:
			addEdge(c.Src, c.Dst)
		case constraint.Load:
			if c.Offset == 0 {
				addEdge(n+c.Src, c.Dst)
			}
		case constraint.Store:
			if c.Offset == 0 {
				addEdge(c.Src, n+c.Dst)
			}
		}
	}
	res := &Result{}
	sccRes := scc.Tarjan(int(2*n), nil, func(x uint32) []uint32 { return adj[x] })
	for _, comp := range sccRes.Comps {
		if len(comp) < 2 {
			continue
		}
		res.SCCs++
		// Partition into variable and ref members.
		var vars, refs []uint32
		for _, m := range comp {
			if m < n {
				vars = append(vars, m)
			} else {
				refs = append(refs, m-n)
			}
		}
		if len(refs) == 0 {
			// Structural cycle: collapse offline.
			for i := 1; i < len(vars); i++ {
				res.PreUnions = append(res.PreUnions, [2]uint32{vars[0], vars[i]})
			}
			continue
		}
		if len(vars) == 0 {
			// Cannot happen: there are no constraints of the form
			// *p ⊇ *q, so ref nodes never connect directly. Guard
			// anyway.
			continue
		}
		res.pairsForSCC(n, adj, vars, refs)
		// The non-ref members of a mixed SCC are NOT collapsed
		// offline: their mutual cycle only materializes online if the
		// ref's points-to set turns out non-empty, and collapsing
		// early could lose precision (§4.2).
	}
	sort.Slice(res.Pairs, func(i, j int) bool { return res.Pairs[i].Deref < res.Pairs[j].Deref })
	res.Duration = time.Since(start)
	return res
}

// pairsForSCC emits the licensed tuples of one mixed SCC: for each ref
// member ref(a), the pair (a, b) where b is the smallest var member on a
// cycle with ref(a) in the subgraph restricted to the SCC's var members
// plus ref(a) itself (no other ref nodes). Refs with no such cycle emit
// nothing — their cycles are conditional on another ref's points-to set.
func (res *Result) pairsForSCC(n uint32, adj [][]uint32, vars, refs []uint32) {
	// local index of the SCC's var members
	idx := make(map[uint32]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	// fwd/rev: var→var edges within the SCC, by local index.
	fwd := make([][]int, len(vars))
	rev := make([][]int, len(vars))
	// refOut[a] / refIn[a]: SCC var members with an edge from / to
	// ref(a), i.e. the SCC's loads of *a and stores into *a.
	refOut := make(map[uint32][]int, len(refs))
	refIn := make(map[uint32][]int, len(refs))
	isRef := make(map[uint32]bool, len(refs))
	for _, a := range refs {
		isRef[a] = true
	}
	for i, v := range vars {
		for _, w := range adj[v] {
			if w < n {
				if j, ok := idx[w]; ok {
					fwd[i] = append(fwd[i], j)
					rev[j] = append(rev[j], i)
				}
			} else if isRef[w-n] {
				refIn[w-n] = append(refIn[w-n], i)
			}
		}
	}
	for _, a := range refs {
		for _, w := range adj[n+a] {
			if j, ok := idx[w]; ok {
				refOut[a] = append(refOut[a], j)
			}
		}
	}
	reach := func(starts []int, edges [][]int) []bool {
		seen := make([]bool, len(vars))
		stack := append([]int(nil), starts...)
		for _, s := range starts {
			seen[s] = true
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range edges[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return seen
	}
	for _, a := range refs {
		// Vars reachable from ref(a), and vars reaching ref(a),
		// through var members only.
		from := reach(refOut[a], fwd)
		to := reach(refIn[a], rev)
		best, found := uint32(0), false
		for i, v := range vars {
			if from[i] && to[i] && (!found || v < best) {
				best, found = v, true
			}
		}
		if found {
			res.Pairs = append(res.Pairs, Pair{Deref: a, Target: best})
		}
	}
}
