package antgrass

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

const quickSrc = `
void *malloc(unsigned long n);
int g1, g2;
int *pick(int c) { if (c) return &g1; return &g2; }
int *(*sel)(int);
int *result;
void main(void) {
	sel = pick;
	result = sel(1);
}
`

func TestEndToEndC(t *testing.T) {
	u, err := CompileC(quickSrc, CGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(context.Background(), u.Prog, Options{Algorithm: LCD, HCD: true})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := u.VarByName("result")
	g1, _ := u.VarByName("g1")
	g2, _ := u.VarByName("g2")
	got := r.PointsTo(res)
	want := []VarID{g1, g2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pts(result) = %v, want %v", got, want)
	}
	if !r.Contains(res, g1) || r.Contains(res, res) {
		t.Error("Contains mismatch")
	}
	if r.PointsToLen(res) != 2 {
		t.Errorf("PointsToLen = %d", r.PointsToLen(res))
	}
}

// TestAllConfigurationsAgree runs every public algorithm, representation,
// and pre-processing combination on a C program and a synthetic workload
// and demands identical solutions.
func TestAllConfigurationsAgree(t *testing.T) {
	u, err := CompileC(quickSrc, CGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("emacs", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range []*Program{u.Prog, w} {
		base, err := Solve(context.Background(), prog, Options{Algorithm: Naive})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Naive, LCD, HT, PKH, PKW, BLQ} {
			for _, hcdOn := range []bool{false, true} {
				for _, ovsOn := range []bool{false, true} {
					for _, repr := range []Repr{Bitmap, BDD} {
						if alg == BLQ && repr == BDD {
							continue // BLQ is inherently relation-BDD
						}
						r, err := Solve(context.Background(), prog, Options{Algorithm: alg, HCD: hcdOn, OVS: ovsOn, Pts: repr, BDDPoolNodes: 1 << 14})
						if err != nil {
							t.Fatalf("%s hcd=%v ovs=%v %s: %v", alg, hcdOn, ovsOn, repr, err)
						}
						for v := VarID(0); v < VarID(prog.NumVars); v++ {
							a, b := base.PointsTo(v), r.PointsTo(v)
							if len(a) == 0 && len(b) == 0 {
								continue
							}
							if !reflect.DeepEqual(a, b) {
								t.Fatalf("%s hcd=%v ovs=%v %s: pts(%s) = %v, want %v",
									alg, hcdOn, ovsOn, repr, prog.NameOf(v), b, a)
							}
						}
					}
				}
			}
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	p := NewProgram()
	p.AddVar("x")
	if _, err := Solve(context.Background(), p, Options{Algorithm: "frobnicate"}); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestOVSStatsExposed(t *testing.T) {
	w, _ := Workload("gimp", 0.01)
	r, err := Solve(context.Background(), w, Options{Algorithm: LCD, OVS: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.OVSStats == nil || r.OVSStats.After > r.OVSStats.Before {
		t.Errorf("OVS stats missing or nonsensical: %+v", r.OVSStats)
	}
	if r2, _ := Solve(context.Background(), w, Options{Algorithm: LCD}); r2.OVSStats != nil {
		t.Error("OVSStats must be nil when OVS is off")
	}
}

func TestHVNHUStatsExposed(t *testing.T) {
	w, _ := Workload("gimp", 0.01)
	r, err := Solve(context.Background(), w, Options{Algorithm: LCD, HVN: true, HU: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.HVNStats == nil || r.HVNStats.After > r.HVNStats.Before {
		t.Errorf("HVN stats missing or nonsensical: %+v", r.HVNStats)
	}
	if r.HUStats == nil || r.HUStats.After > r.HUStats.Before {
		t.Errorf("HU stats missing or nonsensical: %+v", r.HUStats)
	}
	if r.HUStats != nil && r.HUStats.Before != r.HVNStats.After {
		t.Errorf("HU must run on the HVN-reduced program: hvn.After=%d hu.Before=%d",
			r.HVNStats.After, r.HUStats.Before)
	}
	if r2, _ := Solve(context.Background(), w, Options{Algorithm: LCD}); r2.HVNStats != nil || r2.HUStats != nil {
		t.Error("HVNStats/HUStats must be nil when the passes are off")
	}
}

// TestOfflineTiersAgree checks the offline pre-pass lattice at the facade
// level: every tier of HVN ⊑ HU ⊑ +OVS (alone and stacked, with and
// without HCD) must leave the published solution bit-identical to a
// plain solve.
func TestOfflineTiersAgree(t *testing.T) {
	u, err := CompileC(quickSrc, CGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("ghostscript", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	tiers := []Options{
		{HVN: true},
		{HU: true},
		{HVN: true, HU: true},
		{HVN: true, HU: true, OVS: true},
	}
	for _, prog := range []*Program{u.Prog, w} {
		base, err := Solve(context.Background(), prog, Options{Algorithm: Naive})
		if err != nil {
			t.Fatal(err)
		}
		for _, tier := range tiers {
			for _, hcdOn := range []bool{false, true} {
				o := tier
				o.Algorithm = LCD
				o.HCD = hcdOn
				r, err := Solve(context.Background(), prog, o)
				if err != nil {
					t.Fatalf("hvn=%v hu=%v ovs=%v hcd=%v: %v", o.HVN, o.HU, o.OVS, hcdOn, err)
				}
				for v := VarID(0); v < VarID(prog.NumVars); v++ {
					a, b := base.PointsTo(v), r.PointsTo(v)
					if len(a) == 0 && len(b) == 0 {
						continue
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("hvn=%v hu=%v ovs=%v hcd=%v: pts(%s) = %v, want %v",
							o.HVN, o.HU, o.OVS, hcdOn, prog.NameOf(v), b, a)
					}
				}
			}
		}
	}
}

func TestProgramRoundTripThroughFacade(t *testing.T) {
	w, _ := Workload("insight", 0.01)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, w); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumVars != w.NumVars || len(p2.Constraints) != len(w.Constraints) {
		t.Error("round trip changed the program")
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 6 || names[0] != "emacs" || names[5] != "linux" {
		t.Errorf("WorkloadNames = %v", names)
	}
	if _, err := Workload("bogus", 1); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestCallGraph(t *testing.T) {
	src := `
int helper(int x) { return x; }
int other(int x) { return x; }
int (*fp)(int);
void choose(int c) { if (c) fp = helper; else fp = other; }
int run(void) { choose(1); return fp(7); }
`
	u, err := CompileC(src, CGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(context.Background(), u.Prog, Options{Algorithm: LCD, HCD: true})
	if err != nil {
		t.Fatal(err)
	}
	edges := CallGraph(u, r)
	var direct, indirect []string
	for _, e := range edges {
		s := e.Caller + "->" + e.Callee
		if e.Indirect {
			indirect = append(indirect, s)
		} else {
			direct = append(direct, s)
		}
	}
	wantDirect := "run->choose"
	found := false
	for _, d := range direct {
		if d == wantDirect {
			found = true
		}
	}
	if !found {
		t.Errorf("direct edges %v missing %q", direct, wantDirect)
	}
	if len(indirect) != 2 {
		t.Errorf("indirect edges = %v, want run->helper and run->other", indirect)
	}
	for _, want := range []string{"run->helper", "run->other"} {
		ok := false
		for _, s := range indirect {
			if s == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("missing indirect edge %q in %v", want, indirect)
		}
	}
}

func TestAliasFacade(t *testing.T) {
	src := `
int obj;
int *a, *b, *c;
int other;
void main(void) { a = &obj; b = a; c = &other; }
`
	u, err := CompileC(src, CGenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(context.Background(), u.Prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	av, _ := u.VarByName("a")
	bv, _ := u.VarByName("b")
	cv, _ := u.VarByName("c")
	if !r.Alias(av, bv) {
		t.Error("a and b alias")
	}
	if r.Alias(av, cv) {
		t.Error("a and c must not alias")
	}
	if r.Rep(av) == 0 && r.Rep(bv) == 0 {
		t.Log("reps are zero-valued, fine — just exercising the accessor")
	}
}

func TestDefaultsApplied(t *testing.T) {
	w, _ := Workload("emacs", 0.005)
	r, err := Solve(context.Background(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().SolveDuration <= 0 {
		t.Error("defaulted solve should record duration")
	}
}

func TestCompileError(t *testing.T) {
	_, err := CompileC("int f( {", CGenOptions{})
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), ":") {
		t.Errorf("error should carry position: %v", err)
	}
}
