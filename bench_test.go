// Benchmarks mirroring the paper's evaluation artifacts: one testing.B
// target per table and figure (§5). These run miniature versions of the
// experiments (scale 0.02 of the paper's constraint counts) so that
// `go test -bench=.` stays laptop-friendly; cmd/antbench runs the same
// matrix at arbitrary scale and prints the full tables.
package antgrass

import (
	"context"
	"fmt"
	"testing"
)

// benchScale is the workload scale used by the testing.B targets.
const benchScale = 0.02

// benchSubset is the benchmark subset used for per-algorithm timing
// targets (smallest, densest, largest).
var benchSubset = []string{"emacs", "wine", "linux"}

type benchAlgo struct {
	name string
	opts Options
}

var benchMatrix = []benchAlgo{
	{"ht", Options{Algorithm: HT}},
	{"pkh", Options{Algorithm: PKH}},
	{"blq", Options{Algorithm: BLQ}},
	{"lcd", Options{Algorithm: LCD}},
	{"hcd", Options{Algorithm: Naive, HCD: true}},
	{"ht+hcd", Options{Algorithm: HT, HCD: true}},
	{"pkh+hcd", Options{Algorithm: PKH, HCD: true}},
	{"blq+hcd", Options{Algorithm: BLQ, HCD: true}},
	{"lcd+hcd", Options{Algorithm: LCD, HCD: true}},
}

var benchNoBLQ = []benchAlgo{
	{"ht", Options{Algorithm: HT, Pts: BDD}},
	{"pkh", Options{Algorithm: PKH, Pts: BDD}},
	{"lcd", Options{Algorithm: LCD, Pts: BDD}},
	{"hcd", Options{Algorithm: Naive, HCD: true, Pts: BDD}},
	{"ht+hcd", Options{Algorithm: HT, HCD: true, Pts: BDD}},
	{"pkh+hcd", Options{Algorithm: PKH, HCD: true, Pts: BDD}},
	{"lcd+hcd", Options{Algorithm: LCD, HCD: true, Pts: BDD}},
}

func workload(b *testing.B, name string) *Program {
	b.Helper()
	p, err := Workload(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchSolve(b *testing.B, p *Program, o Options) *Result {
	b.Helper()
	r, err := Solve(context.Background(), p, o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// solveScale is the workload scale used by the BenchmarkSolve* targets:
// large enough (0.2 of the paper's constraint counts) that allocation
// behavior and set-operation cost dominate, small enough to iterate.
const solveScale = 0.2

// BenchmarkSolve measures end-to-end solves with bitmap points-to sets at
// scale 0.2, reporting allocations: these are the targets the points-to
// memory engine (element pooling, copy-on-write sharing, word-level
// kernels) is tuned against. ghostscript covers the algorithm matrix;
// wine — the paper's most expensive bitmap workload — covers the headline
// LCD+HCD configuration.
func BenchmarkSolve(b *testing.B) {
	cases := []struct {
		bench string
		algo  benchAlgo
	}{
		{"ghostscript", benchAlgo{"naive", Options{Algorithm: Naive}}},
		{"ghostscript", benchAlgo{"lcd", Options{Algorithm: LCD}}},
		{"ghostscript", benchAlgo{"lcd+hcd", Options{Algorithm: LCD, HCD: true}}},
		{"ghostscript", benchAlgo{"lcd+diff", Options{Algorithm: LCD, DiffProp: true}}},
		{"ghostscript", benchAlgo{"ht+hcd", Options{Algorithm: HT, HCD: true}}},
		{"ghostscript", benchAlgo{"pkh+hcd", Options{Algorithm: PKH, HCD: true}}},
		{"wine", benchAlgo{"lcd+hcd", Options{Algorithm: LCD, HCD: true}}},
	}
	progs := map[string]*Program{}
	for _, c := range cases {
		if progs[c.bench] == nil {
			p, err := Workload(c.bench, solveScale)
			if err != nil {
				b.Fatal(err)
			}
			progs[c.bench] = p
		}
		b.Run(fmt.Sprintf("%s/%s", c.algo.name, c.bench), func(b *testing.B) {
			p := progs[c.bench]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSolve(b, p, c.algo.opts)
			}
		})
	}
}

// BenchmarkSolveParallel sweeps the wave engine's worker count on
// ghostscript at scale 0.2 — the parallel-scaling target the
// destination-sharded merge and the cost-model chunking are tuned
// against. One sub-benchmark per worker count keeps the sweep diffable
// with benchstat; docs/BENCHMARKS.md records the measured scaling table.
func BenchmarkSolveParallel(b *testing.B) {
	p, err := Workload("ghostscript", solveScale)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lcd+hcd/ghostscript/w%d", w), func(b *testing.B) {
			opts := Options{Algorithm: LCD, HCD: true, Workers: w}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSolve(b, p, opts)
			}
		})
	}
}

// BenchmarkTable2Workloads measures workload generation plus OVS reduction
// for each Table 2 profile and reports the reduction percentage the paper
// quotes (60-77%).
func BenchmarkTable2Workloads(b *testing.B) {
	for _, name := range WorkloadNames() {
		b.Run(name, func(b *testing.B) {
			var reduction float64
			for i := 0; i < b.N; i++ {
				p, err := Workload(name, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				r := Reduce(p)
				reduction = r.ReductionPercent()
			}
			b.ReportMetric(reduction, "reduction%")
		})
	}
}

// BenchmarkTable3 times every algorithm with bitmap points-to sets
// (Table 3's matrix) on the benchmark subset.
func BenchmarkTable3(b *testing.B) {
	for _, a := range benchMatrix {
		for _, name := range benchSubset {
			b.Run(fmt.Sprintf("%s/%s", a.name, name), func(b *testing.B) {
				p := workload(b, name)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchSolve(b, p, a.opts)
				}
			})
		}
	}
}

// BenchmarkTable4 reports the analytic memory footprint (MB) of each
// algorithm with bitmap sets, Table 4's quantity.
func BenchmarkTable4(b *testing.B) {
	for _, a := range benchMatrix {
		b.Run(a.name, func(b *testing.B) {
			p := workload(b, "linux")
			var mem float64
			for i := 0; i < b.N; i++ {
				r := benchSolve(b, p, a.opts)
				mem = float64(r.Stats().MemBytes) / (1 << 20)
			}
			b.ReportMetric(mem, "MB")
		})
	}
}

// BenchmarkTable5 times the BDD points-to representation (Table 5).
func BenchmarkTable5(b *testing.B) {
	for _, a := range benchNoBLQ {
		for _, name := range benchSubset {
			b.Run(fmt.Sprintf("%s/%s", a.name, name), func(b *testing.B) {
				p := workload(b, name)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchSolve(b, p, a.opts)
				}
			})
		}
	}
}

// BenchmarkTable6 reports memory with BDD points-to sets (Table 6).
func BenchmarkTable6(b *testing.B) {
	for _, a := range benchNoBLQ {
		b.Run(a.name, func(b *testing.B) {
			p := workload(b, "linux")
			var mem float64
			for i := 0; i < b.N; i++ {
				r := benchSolve(b, p, a.opts)
				mem = float64(r.Stats().MemBytes) / (1 << 20)
			}
			b.ReportMetric(mem, "MB")
		})
	}
}

// BenchmarkFigure6 runs the headline comparison (LCD+HCD vs HT, PKH, BLQ)
// and reports LCD+HCD's speedup over each (the paper's 3.2x / 6.4x /
// 20.6x numbers).
func BenchmarkFigure6(b *testing.B) {
	p := workload(b, "linux")
	for _, rival := range []benchAlgo{
		{"vs-ht", Options{Algorithm: HT}},
		{"vs-pkh", Options{Algorithm: PKH}},
		{"vs-blq", Options{Algorithm: BLQ}},
	} {
		b.Run(rival.name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				ours := benchSolve(b, p, Options{Algorithm: LCD, HCD: true})
				theirs := benchSolve(b, p, rival.opts)
				speedup = theirs.Stats().SolveDuration.Seconds() / ours.Stats().SolveDuration.Seconds()
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkFigure7 reports each algorithm's time normalized to LCD.
func BenchmarkFigure7(b *testing.B) {
	p := workload(b, "wine")
	for _, a := range []benchAlgo{
		{"ht", Options{Algorithm: HT}},
		{"pkh", Options{Algorithm: PKH}},
		{"blq", Options{Algorithm: BLQ}},
		{"hcd", Options{Algorithm: Naive, HCD: true}},
	} {
		b.Run(a.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				lcd := benchSolve(b, p, Options{Algorithm: LCD})
				other := benchSolve(b, p, a.opts)
				ratio = other.Stats().SolveDuration.Seconds() / lcd.Stats().SolveDuration.Seconds()
			}
			b.ReportMetric(ratio, "vs-lcd")
		})
	}
}

// BenchmarkFigure8 reports the speedup HCD gives each algorithm
// (time(algo) / time(algo+hcd)).
func BenchmarkFigure8(b *testing.B) {
	p := workload(b, "linux")
	for _, a := range []struct {
		name           string
		plain, boosted Options
	}{
		{"ht", Options{Algorithm: HT}, Options{Algorithm: HT, HCD: true}},
		{"pkh", Options{Algorithm: PKH}, Options{Algorithm: PKH, HCD: true}},
		{"blq", Options{Algorithm: BLQ}, Options{Algorithm: BLQ, HCD: true}},
		{"lcd", Options{Algorithm: LCD}, Options{Algorithm: LCD, HCD: true}},
	} {
		b.Run(a.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				plain := benchSolve(b, p, a.plain)
				boosted := benchSolve(b, p, a.boosted)
				ratio = plain.Stats().SolveDuration.Seconds() / boosted.Stats().SolveDuration.Seconds()
			}
			b.ReportMetric(ratio, "hcd-speedup")
		})
	}
}

// BenchmarkFigure9 reports BDD-vs-bitmap time per algorithm (paper: BDDs
// average 2x slower).
func BenchmarkFigure9(b *testing.B) {
	p := workload(b, "wine")
	for _, alg := range []Algorithm{HT, PKH, LCD} {
		b.Run(string(alg), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				bm := benchSolve(b, p, Options{Algorithm: alg})
				bd := benchSolve(b, p, Options{Algorithm: alg, Pts: BDD})
				ratio = bd.Stats().SolveDuration.Seconds() / bm.Stats().SolveDuration.Seconds()
			}
			b.ReportMetric(ratio, "bdd/bitmap")
		})
	}
}

// BenchmarkFigure10 reports bitmap-vs-BDD memory per algorithm (paper:
// bitmaps average 5.5x bigger).
func BenchmarkFigure10(b *testing.B) {
	p := workload(b, "wine")
	for _, alg := range []Algorithm{HT, PKH, LCD} {
		b.Run(string(alg), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				bm := benchSolve(b, p, Options{Algorithm: alg})
				bd := benchSolve(b, p, Options{Algorithm: alg, Pts: BDD})
				ratio = float64(bm.Stats().MemBytes) / float64(bd.Stats().MemBytes)
			}
			b.ReportMetric(ratio, "bitmap/bdd-mem")
		})
	}
}

// BenchmarkStats53 reports the §5.3 cost counters for the main algorithms
// as custom metrics (nodes collapsed / searched / propagations).
func BenchmarkStats53(b *testing.B) {
	p := workload(b, "linux")
	for _, a := range benchMatrix {
		b.Run(a.name, func(b *testing.B) {
			var s Stats
			for i := 0; i < b.N; i++ {
				s = benchSolve(b, p, a.opts).Stats()
			}
			b.ReportMetric(float64(s.NodesCollapsed), "collapsed")
			b.ReportMetric(float64(s.NodesSearched), "searched")
			b.ReportMetric(float64(s.Propagations), "propagations")
		})
	}
}

// BenchmarkOVS measures the pre-processing pass on the largest profile.
func BenchmarkOVS(b *testing.B) {
	p := workload(b, "linux")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(p)
	}
}

// BenchmarkCompileC measures the C front-end on a representative source.
func BenchmarkCompileC(b *testing.B) {
	src := `
void *malloc(unsigned long n);
struct node { struct node *next; int *payload; };
struct node *head;
int pool[64];
void push(int *p) {
	struct node *n = malloc(sizeof(struct node));
	n->payload = p;
	n->next = head;
	head = n;
}
int *sum(void) {
	struct node *it;
	int *acc = pool;
	for (it = head; it; it = it->next) acc = it->payload;
	return acc;
}
int (*op)(int);
int twice(int x) { return x + x; }
int apply(void) { op = twice; return op(2); }
void main(void) { push(pool); sum(); apply(); }
`
	for i := 0; i < b.N; i++ {
		if _, err := CompileC(src, CGenOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
