package antgrass

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antgrass/internal/synth"
)

// sessionConfigs are the option sets the incremental oracle sweeps:
// both resumable algorithms with and without HCD and DiffProp, plus
// non-resumable configurations that must transparently replay.
func sessionConfigs() map[string]Options {
	return map[string]Options{
		"naive":               {Algorithm: Naive},
		"lcd":                 {Algorithm: LCD},
		"lcd+hcd":             {Algorithm: LCD, HCD: true},
		"naive+diff":          {Algorithm: Naive, DiffProp: true},
		"lcd+hcd+diff":        {Algorithm: LCD, HCD: true, DiffProp: true},
		"ovs (replay)":        {Algorithm: LCD, OVS: true},
		"hvn (replay)":        {Algorithm: LCD, HVN: true},
		"hvn+hu (replay)":     {Algorithm: LCD, HVN: true, HU: true},
		"hvn+hu+ovs (replay)": {Algorithm: LCD, HVN: true, HU: true, OVS: true, HCD: true},
		"ht (replay)":         {Algorithm: HT},
		"parallel 2w":         {Algorithm: LCD, Workers: 2},
	}
}

// randomSessionDelta builds a random delta against a program with n
// variables: sometimes fresh variables, a few added constraints, and —
// when remove is set — a few removals drawn from the current constraint
// set. Offsets stay at zero so the delta is valid for any universe.
func randomSessionDelta(rng *rand.Rand, p *Program, remove bool) Delta {
	var d Delta
	n := p.NumVars
	if rng.Intn(3) == 0 {
		d.AddVars = append(d.AddVars, fmt.Sprintf("d$v%d", rng.Int()))
		n++
	}
	if rng.Intn(6) == 0 {
		d.AddFuncs = append(d.AddFuncs, FuncDef{Name: fmt.Sprintf("d$f%d", rng.Int()), NumParams: rng.Intn(3)})
		n += 2 + rng.Intn(3) // at least ret+params span... conservatively bump
		n = p.NumVars + 1    // only index into the pre-delta universe plus first fresh var
	}
	rv := func() VarID { return VarID(rng.Intn(n)) }
	for i := 1 + rng.Intn(4); i > 0; i-- {
		switch rng.Intn(4) {
		case 0:
			d.Add = append(d.Add, AddrOfConstraint(rv(), rv()))
		case 1:
			d.Add = append(d.Add, CopyConstraint(rv(), rv()))
		case 2:
			d.Add = append(d.Add, LoadConstraint(rv(), rv(), 0))
		default:
			d.Add = append(d.Add, StoreConstraint(rv(), rv(), 0))
		}
	}
	if remove && len(p.Constraints) > 0 && rng.Intn(2) == 0 {
		for i := 1 + rng.Intn(3); i > 0; i-- {
			d.Remove = append(d.Remove, p.Constraints[rng.Intn(len(p.Constraints))])
		}
	}
	return d
}

// checkAgainstOracle asserts that the session's published solution is
// bit-identical to a from-scratch solve of its current program.
func checkAgainstOracle(t *testing.T, sess *Session, o Options, tag string) {
	t.Helper()
	want, err := Solve(context.Background(), sess.Program(), o)
	if err != nil {
		t.Fatalf("%s: oracle solve: %v", tag, err)
	}
	sn := sess.Snapshot()
	if sn.NumVars() != want.Snapshot().NumVars() {
		t.Fatalf("%s: numvars %d != oracle %d", tag, sn.NumVars(), want.Snapshot().NumVars())
	}
	for v := 0; v < sn.NumVars(); v++ {
		got, exp := sn.PointsTo(VarID(v)), want.PointsTo(VarID(v))
		if len(got) != len(exp) {
			t.Fatalf("%s: pts(v%d) len %d != oracle %d (got %v want %v)",
				tag, v, len(got), len(exp), got, exp)
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("%s: pts(v%d)[%d] = %d != oracle %d", tag, v, i, got[i], exp[i])
			}
		}
	}
}

// TestSessionOracle is the incremental-analysis acceptance test:
// randomized add/remove delta sequences over random base programs, with
// every epoch cross-checked bit-identical against a from-scratch solve
// under the same options. Monotone sequences exercise the warm-resume
// path; removals exercise coarse invalidation; non-resumable configs
// exercise the replay fallback.
func TestSessionOracle(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for name, opts := range sessionConfigs() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(seed)*977 + 13))
				p := synth.RandomProgram(rng)
				for p.Validate() != nil { // generator may emit bad offsets; redraw
					p = synth.RandomProgram(rng)
				}
				sess, err := NewSession(context.Background(), p, opts)
				if err != nil {
					t.Fatalf("seed %d: NewSession: %v", seed, err)
				}
				checkAgainstOracle(t, sess, opts, fmt.Sprintf("seed %d epoch 1", seed))
				// Half the sequences are pure-monotone (resume path),
				// half mix in removals (replay path).
				withRemove := seed%2 == 1
				for step := 0; step < 6; step++ {
					d := randomSessionDelta(rng, sess.Program(), withRemove)
					if _, err := sess.Update(context.Background(), d); err != nil {
						t.Fatalf("seed %d step %d: Update: %v", seed, step, err)
					}
					checkAgainstOracle(t, sess, opts,
						fmt.Sprintf("seed %d step %d (remove=%v)", seed, step, withRemove))
				}
				sess.Close()
			}
		})
	}
}

// TestSessionResumePath pins which deltas resume versus replay: monotone
// additions under a resumable config must all resume; a removal forces
// one replay and then later monotone deltas resume again on the rebuilt
// warm state.
func TestSessionResumePath(t *testing.T) {
	p := NewProgram()
	for i := 0; i < 8; i++ {
		p.AddVar(fmt.Sprintf("v%d", i))
	}
	p.AddAddrOf(0, 1)
	p.AddCopy(2, 0)
	sess, err := NewSession(context.Background(), p, Options{Algorithm: LCD, HCD: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for i := 0; i < 3; i++ {
		d := Delta{Add: []Constraint{CopyConstraint(VarID(3+i), 2)}}
		if _, err := sess.Update(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if resumed, replayed := sess.UpdateStats(); resumed != 3 || replayed != 0 {
		t.Fatalf("after monotone deltas: resumed=%d replayed=%d, want 3/0", resumed, replayed)
	}
	if !sess.Snapshot().Contains(5, 1) {
		t.Fatal("v5 should point to v1 after the copy chain")
	}

	// A removal invalidates: replay, and the solution actually shrinks.
	d := Delta{Remove: []Constraint{CopyConstraint(3, 2)}}
	if _, err := sess.Update(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if resumed, replayed := sess.UpdateStats(); resumed != 3 || replayed != 1 {
		t.Fatalf("after removal: resumed=%d replayed=%d, want 3/1", resumed, replayed)
	}
	if sess.Snapshot().Contains(3, 1) {
		t.Fatal("v3 should no longer point to v1 after removing its copy edge")
	}

	// Warm state was rebuilt by the replay: monotone deltas resume again.
	if _, err := sess.Update(context.Background(),
		Delta{Add: []Constraint{CopyConstraint(6, 2)}}); err != nil {
		t.Fatal(err)
	}
	if resumed, replayed := sess.UpdateStats(); resumed != 4 || replayed != 1 {
		t.Fatalf("after post-replay delta: resumed=%d replayed=%d, want 4/1", resumed, replayed)
	}
	if sess.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6 (initial + 5 updates)", sess.Epoch())
	}
}

// TestSessionSnapshotIsolation verifies epochs are immutable: a snapshot
// taken before an update answers identically after the update lands,
// while the new snapshot sees the delta.
func TestSessionSnapshotIsolation(t *testing.T) {
	p := NewProgram()
	for i := 0; i < 6; i++ {
		p.AddVar(fmt.Sprintf("v%d", i))
	}
	p.AddAddrOf(0, 1) // v0 -> {v1}
	sess, err := NewSession(context.Background(), p, Options{Algorithm: LCD})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	old := sess.Snapshot()
	before := old.PointsTo(0)

	// The update both adds to v0's set and unions v2 into v0's cycle.
	d := Delta{Add: []Constraint{
		AddrOfConstraint(0, 3),
		CopyConstraint(2, 0),
		CopyConstraint(0, 2),
	}}
	cur, err := sess.Update(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}

	if got := old.PointsTo(0); len(got) != len(before) || got[0] != before[0] {
		t.Fatalf("old snapshot mutated: pts(v0) = %v, want %v", got, before)
	}
	if old.Epoch() == cur.Epoch() {
		t.Fatal("update did not advance the epoch")
	}
	if !cur.Contains(0, 3) || !cur.Contains(2, 3) {
		t.Fatalf("new snapshot missing delta facts: pts(v0)=%v pts(v2)=%v",
			cur.PointsTo(0), cur.PointsTo(2))
	}
	if old.Contains(0, 3) {
		t.Fatal("old snapshot sees the new epoch's fact")
	}
}

// TestSessionErrors pins the error contract: invalid deltas roll back and
// leave the epoch untouched; closed sessions reject updates but keep
// serving snapshots.
func TestSessionErrors(t *testing.T) {
	p := NewProgram()
	p.AddVar("a")
	p.AddVar("b")
	p.AddAddrOf(0, 1)
	sess, err := NewSession(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	epoch, nv := sess.Epoch(), sess.NumVars()
	_, err = sess.Update(context.Background(), Delta{
		AddVars: []string{"c"},
		Add:     []Constraint{CopyConstraint(99, 0)}, // out of range
	})
	if !errors.Is(err, ErrInvalidDelta) {
		t.Fatalf("out-of-range delta: err = %v, want ErrInvalidDelta", err)
	}
	if sess.Epoch() != epoch || sess.NumVars() != nv {
		t.Fatalf("failed delta leaked state: epoch %d→%d vars %d→%d",
			epoch, sess.Epoch(), nv, sess.NumVars())
	}
	// The session still works after the rollback.
	if _, err := sess.Update(context.Background(),
		Delta{Add: []Constraint{CopyConstraint(1, 0)}}); err != nil {
		t.Fatalf("update after rollback: %v", err)
	}

	sess.Close()
	if _, err := sess.Update(context.Background(), Delta{AddVars: []string{"d"}}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("closed session: err = %v, want ErrSessionClosed", err)
	}
	if sess.Snapshot() == nil || !sess.Snapshot().Contains(0, 1) {
		t.Fatal("closed session must keep serving its last snapshot")
	}
}

// TestSessionCanceledUpdate verifies the taint protocol: an update
// canceled mid-solve leaves the published snapshot at the previous epoch,
// and the next (uncanceled) update recovers by replaying.
func TestSessionCanceledUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := synth.RandomProgram(rng)
	for p.Validate() != nil {
		p = synth.RandomProgram(rng)
	}
	opts := Options{Algorithm: LCD}
	sess, err := NewSession(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	epoch := sess.Epoch()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the resume loop exits on its first poll
	d := randomSessionDelta(rng, sess.Program(), false)
	if _, err := sess.Update(ctx, d); err == nil {
		t.Skip("solver finished before noticing cancellation") // tiny program; nothing to assert
	}
	if sess.Epoch() != epoch {
		t.Fatalf("canceled update advanced the epoch: %d → %d", epoch, sess.Epoch())
	}

	// Recovery: the same session accepts the next update (via replay,
	// since the warm state was tainted) and matches the oracle.
	if _, err := sess.Update(context.Background(),
		Delta{Add: []Constraint{CopyConstraint(1, 0)}}); err != nil {
		t.Fatalf("update after canceled update: %v", err)
	}
	checkAgainstOracle(t, sess, opts, "post-cancel")
}

// TestSessionQueryStorm is the concurrency acceptance test: 64+ readers
// hammer snapshots (points-to, alias, membership) while the writer
// applies a stream of monotone updates. Run under -race this checks the
// COW snapshot discipline; the in-test asserts check reader-visible
// consistency (answers come from a single coherent epoch).
func TestSessionQueryStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewProgram()
	p.AddFunc("f", 2)
	for i := 0; i < 40; i++ {
		p.AddVar(fmt.Sprintf("v%d", i))
	}
	n := p.NumVars
	for i := 0; i < 120; i++ {
		d, s := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		switch rng.Intn(4) {
		case 0:
			p.AddAddrOf(d, s)
		case 1:
			p.AddCopy(d, s)
		case 2:
			p.AddLoad(d, s, 0)
		default:
			p.AddStore(d, s, 0)
		}
	}
	sess, err := NewSession(context.Background(), p, Options{Algorithm: LCD, HCD: true, DiffProp: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const readers = 64
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				sn := sess.Snapshot()
				nv := sn.NumVars()
				v := VarID(rng.Intn(nv))
				// Within one snapshot, PointsTo / PointsToLen / Contains
				// must agree with each other.
				set := sn.PointsTo(v)
				if got := sn.PointsToLen(v); got != len(set) {
					t.Errorf("epoch %d: PointsToLen(v%d)=%d, PointsTo has %d", sn.Epoch(), v, got, len(set))
					return
				}
				for _, loc := range set {
					if !sn.Contains(v, loc) {
						t.Errorf("epoch %d: pts(v%d) lists %d but Contains denies it", sn.Epoch(), v, loc)
						return
					}
				}
				w := VarID(rng.Intn(nv))
				sn.Alias(v, w)
				queries.Add(1)
			}
		}(int64(r) * 31)
	}

	// Writer: a stream of monotone deltas while the storm runs.
	deadline := time.Now().Add(1500 * time.Millisecond)
	updates := 0
	for time.Now().Before(deadline) {
		d := Delta{
			AddVars: []string{fmt.Sprintf("storm$%d", updates)},
			Add: []Constraint{
				AddrOfConstraint(VarID(sess.NumVars()), VarID(rng.Intn(n))),
				CopyConstraint(VarID(rng.Intn(n)), VarID(sess.NumVars())),
			},
		}
		if _, err := sess.Update(context.Background(), d); err != nil {
			t.Errorf("storm update %d: %v", updates, err)
			break
		}
		updates++
	}
	stop.Store(true)
	wg.Wait()

	if updates == 0 {
		t.Fatal("no updates completed during the storm")
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the storm")
	}
	resumed, replayed := sess.UpdateStats()
	t.Logf("storm: %d queries, %d updates (resumed=%d replayed=%d), final epoch %d",
		queries.Load(), updates, resumed, replayed, sess.Epoch())
	checkAgainstOracle(t, sess, Options{Algorithm: LCD, HCD: true, DiffProp: true}, "post-storm")
}
