package antgrass

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into a shared temp dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestCLIPipeline drives the full toolchain: antcgen compiles C to a
// constraint file, antsolve solves it, antsynth generates a workload that
// antsolve also solves, and antcall prints a call graph.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	antcgen := buildTool(t, dir, "antcgen")
	antsolve := buildTool(t, dir, "antsolve")
	antsynth := buildTool(t, dir, "antsynth")
	antcall := buildTool(t, dir, "antcall")

	// 1. C → constraints.
	csrc := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(csrc, []byte(`
int g1, g2;
int *pick(int c) { if (c) return &g1; return &g2; }
int *(*sel)(int);
int *result;
void main(void) { sel = pick; result = sel(1); }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfile := filepath.Join(dir, "prog.constraints")
	_, cgenErr := run(t, antcgen, "-o", cfile, csrc)
	if !strings.Contains(cgenErr, "constraints") {
		t.Errorf("antcgen summary missing: %q", cgenErr)
	}

	// 2. Solve it and query one variable by name.
	out, _ := run(t, antsolve, "-alg", "lcd", "-hcd", "-stats", "-var", "result", cfile)
	if !strings.Contains(out, "result -> {") {
		t.Errorf("antsolve output missing variable dump:\n%s", out)
	}
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Errorf("pts(result) should name g1 and g2:\n%s", out)
	}
	if !strings.Contains(out, "nodes collapsed") {
		t.Errorf("stats block missing:\n%s", out)
	}

	// 3. Synthetic workload → solve with OVS.
	wfile := filepath.Join(dir, "w.constraints")
	run(t, antsynth, "-bench", "emacs", "-scale", "0.02", "-o", wfile)
	out, _ = run(t, antsolve, "-alg", "pkh", "-ovs", wfile)
	if !strings.Contains(out, "ovs:") {
		t.Errorf("antsolve -ovs output missing reduction line:\n%s", out)
	}
	if !strings.Contains(out, "solved") {
		t.Errorf("antsolve summary missing:\n%s", out)
	}

	// 4. Call graph straight from C.
	out, _ = run(t, antcall, "-modref", "-transitive", csrc)
	if !strings.Contains(out, "main") || !strings.Contains(out, "pick") {
		t.Errorf("antcall output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "MOD/REF") {
		t.Errorf("antcall -modref summary missing:\n%s", out)
	}

	// 5. Round trip: solving the same file with two algorithms agrees on
	// the summary's set statistics.
	out1, _ := run(t, antsolve, "-alg", "lcd", wfile)
	out2, _ := run(t, antsolve, "-alg", "ht", wfile)
	stat1 := extractLine(out1, "non-empty")
	stat2 := extractLine(out2, "non-empty")
	if stat1 == "" || stat1 != stat2 {
		t.Errorf("solution statistics differ between solvers:\n%q\n%q", stat1, stat2)
	}
}

func extractLine(s, prefix string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestCLIBenchSmoke runs antbench on a tiny scale for one table.
func TestCLIBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	antbench := buildTool(t, dir, "antbench")
	out, _ := run(t, antbench, "-scale", "0.004", "-table", "3")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "lcd+hcd") {
		t.Errorf("antbench table output incomplete:\n%s", out)
	}
	if strings.Contains(out, "ERR") {
		t.Errorf("antbench cell failed:\n%s", out)
	}
}

// TestCLIBenchJSONAndBenchdiff drives the observability pipeline end to
// end: antbench -json writes a schema-versioned report, and
// scripts/benchdiff.go passes on identical reports but exits non-zero on
// an injected 50% regression.
func TestCLIBenchJSONAndBenchdiff(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	antbench := buildTool(t, dir, "antbench")
	repPath := filepath.Join(dir, "old.json")
	out, _ := run(t, antbench, "-json", "-scale", "0.01", "-benches", "emacs", "-out", repPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("antbench -json summary missing:\n%s", out)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"schema_version": 1`) {
		t.Fatalf("report missing schema version:\n%.400s", raw)
	}

	// Inject a 50% wall-clock regression into a copy (textual surgery
	// would be brittle; reparse with encoding/json via the bench types
	// is what benchdiff itself does, so keep the test independent and
	// rewrite one number with a scanner).
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(newPath, injectRegression(t, raw), 0o644); err != nil {
		t.Fatal(err)
	}

	// Identical reports: exit 0.
	diff := exec.Command("go", "run", "./scripts/benchdiff.go", "-min-seconds", "0", repPath, repPath)
	if out, err := diff.CombinedOutput(); err != nil {
		t.Fatalf("benchdiff on identical reports failed: %v\n%s", err, out)
	}
	// Injected regression: exit non-zero and name the regression.
	diff = exec.Command("go", "run", "./scripts/benchdiff.go", "-threshold", "15", "-min-seconds", "0", repPath, newPath)
	out2, err := diff.CombinedOutput()
	if err == nil {
		t.Fatalf("benchdiff missed injected regression:\n%s", out2)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("benchdiff exit = %v, want status 1\n%s", err, out2)
	}
	if !strings.Contains(string(out2), "REGRESSION") {
		t.Fatalf("benchdiff output missing REGRESSION marker:\n%s", out2)
	}
}

// injectRegression multiplies every wall_seconds in a report by 1.5.
func injectRegression(t *testing.T, raw []byte) []byte {
	t.Helper()
	var rep map[string]interface{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	runs, ok := rep["runs"].([]interface{})
	if !ok || len(runs) == 0 {
		t.Fatalf("report has no runs")
	}
	for _, r := range runs {
		m := r.(map[string]interface{})
		m["wall_seconds"] = m["wall_seconds"].(float64) * 1.5
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
