package antgrass

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into a shared temp dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestCLIPipeline drives the full toolchain: antcgen compiles C to a
// constraint file, antsolve solves it, antsynth generates a workload that
// antsolve also solves, and antcall prints a call graph.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	antcgen := buildTool(t, dir, "antcgen")
	antsolve := buildTool(t, dir, "antsolve")
	antsynth := buildTool(t, dir, "antsynth")
	antcall := buildTool(t, dir, "antcall")

	// 1. C → constraints.
	csrc := filepath.Join(dir, "prog.c")
	if err := os.WriteFile(csrc, []byte(`
int g1, g2;
int *pick(int c) { if (c) return &g1; return &g2; }
int *(*sel)(int);
int *result;
void main(void) { sel = pick; result = sel(1); }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfile := filepath.Join(dir, "prog.constraints")
	_, cgenErr := run(t, antcgen, "-o", cfile, csrc)
	if !strings.Contains(cgenErr, "constraints") {
		t.Errorf("antcgen summary missing: %q", cgenErr)
	}

	// 2. Solve it and query one variable by name.
	out, _ := run(t, antsolve, "-alg", "lcd", "-hcd", "-stats", "-var", "result", cfile)
	if !strings.Contains(out, "result -> {") {
		t.Errorf("antsolve output missing variable dump:\n%s", out)
	}
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Errorf("pts(result) should name g1 and g2:\n%s", out)
	}
	if !strings.Contains(out, "nodes collapsed") {
		t.Errorf("stats block missing:\n%s", out)
	}

	// 3. Synthetic workload → solve with OVS.
	wfile := filepath.Join(dir, "w.constraints")
	run(t, antsynth, "-bench", "emacs", "-scale", "0.02", "-o", wfile)
	out, _ = run(t, antsolve, "-alg", "pkh", "-ovs", wfile)
	if !strings.Contains(out, "ovs:") {
		t.Errorf("antsolve -ovs output missing reduction line:\n%s", out)
	}
	if !strings.Contains(out, "solved") {
		t.Errorf("antsolve summary missing:\n%s", out)
	}

	// 4. Call graph straight from C.
	out, _ = run(t, antcall, "-modref", "-transitive", csrc)
	if !strings.Contains(out, "main") || !strings.Contains(out, "pick") {
		t.Errorf("antcall output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "MOD/REF") {
		t.Errorf("antcall -modref summary missing:\n%s", out)
	}

	// 5. Round trip: solving the same file with two algorithms agrees on
	// the summary's set statistics.
	out1, _ := run(t, antsolve, "-alg", "lcd", wfile)
	out2, _ := run(t, antsolve, "-alg", "ht", wfile)
	stat1 := extractLine(out1, "non-empty")
	stat2 := extractLine(out2, "non-empty")
	if stat1 == "" || stat1 != stat2 {
		t.Errorf("solution statistics differ between solvers:\n%q\n%q", stat1, stat2)
	}
}

func extractLine(s, prefix string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// TestCLIBenchSmoke runs antbench on a tiny scale for one table.
func TestCLIBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	antbench := buildTool(t, dir, "antbench")
	out, _ := run(t, antbench, "-scale", "0.004", "-table", "3")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "lcd+hcd") {
		t.Errorf("antbench table output incomplete:\n%s", out)
	}
	if strings.Contains(out, "ERR") {
		t.Errorf("antbench cell failed:\n%s", out)
	}
}
